#include <gtest/gtest.h>

#include "model/annotators.h"
#include "model/candidate_model.h"
#include "model/options.h"
#include "model/features.h"
#include "model/sequence_model.h"
#include "model/trainer.h"
#include "ocr/line_detector.h"
#include "synth/domains.h"
#include "synth/generator.h"

namespace fieldswap {
namespace {

// ---- Features -------------------------------------------------------------

TEST(FeaturesTest, TokenShapeCollapsesRuns) {
  EXPECT_EQ(TokenShape("Overtime"), "Xx");
  EXPECT_EQ(TokenShape("$3,308.62"), "$d,d.d");
  EXPECT_EQ(TokenShape("PTO"), "X");
  EXPECT_EQ(TokenShape("01/15/2024"), "d/d/d");
  EXPECT_EQ(TokenShape(""), "");
}

TEST(FeaturesTest, BucketsStableAndBounded) {
  EXPECT_EQ(TextBucket("Overtime", 256), TextBucket("overtime", 256))
      << "text bucket is case-insensitive";
  EXPECT_LT(TextBucket("anything", 64), 64);
  EXPECT_EQ(ShapeBucket("Bonus", 64), ShapeBucket("Wages", 64))
      << "same shape Xx";
}

TEST(FeaturesTest, PositionFeaturesNormalized) {
  std::vector<float> feats =
      PositionFeatures(BBox{306, 396, 326, 416}, 612, 792);
  ASSERT_EQ(feats.size(), static_cast<size_t>(kNumPositionFeatures));
  EXPECT_NEAR(feats[0], 0.516, 1e-2);
  EXPECT_NEAR(feats[1], 0.513, 1e-2);
}

TEST(FeaturesTest, RelativeFeaturesSigns) {
  BBox anchor{100, 100, 120, 110};
  BBox right_of{200, 100, 220, 110};
  std::vector<float> feats = RelativeFeatures(anchor, right_of, 612, 792);
  ASSERT_EQ(feats.size(), static_cast<size_t>(kNumRelativeFeatures));
  EXPECT_GT(feats[0], 0) << "dx positive for rightward neighbor";
  EXPECT_NEAR(feats[1], 0, 1e-6) << "dy zero for same row";
  EXPECT_NEAR(feats[4], 0, 1e-6) << "off-axis zero for same row";
  EXPECT_EQ(feats[5], 1.0f) << "same y-band flag";
}

// ---- Annotators -----------------------------------------------------------

TEST(AnnotatorsTest, MoneyToken) {
  EXPECT_TRUE(IsMoneyToken("$3,308.62"));
  EXPECT_TRUE(IsMoneyToken("1234.56"));
  EXPECT_TRUE(IsMoneyToken("($42.00)"));
  EXPECT_FALSE(IsMoneyToken("3308"));
  EXPECT_FALSE(IsMoneyToken("$3,308.621"));
  EXPECT_FALSE(IsMoneyToken("abc.de"));
  EXPECT_FALSE(IsMoneyToken(""));
}

TEST(AnnotatorsTest, DateToken) {
  EXPECT_TRUE(IsDateToken("01/15/2024"));
  EXPECT_TRUE(IsDateToken("2024-01-15"));
  EXPECT_FALSE(IsDateToken("1/2"));
  EXPECT_FALSE(IsDateToken("01-15"));
  EXPECT_FALSE(IsDateToken("Overtime"));
}

TEST(AnnotatorsTest, NumberAndZip) {
  EXPECT_TRUE(IsNumberToken("12345"));
  EXPECT_FALSE(IsNumberToken("12"));
  EXPECT_FALSE(IsNumberToken("12a45"));
  EXPECT_TRUE(IsZipToken("94025"));
  EXPECT_FALSE(IsZipToken("9402"));
}

Document AnnotatorDoc() {
  Document doc("a", "test", 612, 792);
  doc.AddToken("Invoice", BBox{0, 0, 40, 10});
  doc.AddToken("Date", BBox{45, 0, 70, 10});
  doc.AddToken("01/15/2024", BBox{80, 0, 140, 10});
  doc.AddToken("Total", BBox{0, 20, 30, 30});
  doc.AddToken("$42.00", BBox{40, 20, 80, 30});
  doc.AddToken("Jan", BBox{0, 40, 20, 50});
  doc.AddToken("3,", BBox{24, 40, 34, 50});
  doc.AddToken("2023", BBox{38, 40, 60, 50});
  doc.AddToken("4521", BBox{0, 60, 25, 70});
  doc.AddToken("Maple", BBox{30, 60, 60, 70});
  doc.AddToken("St,", BBox{64, 60, 80, 70});
  doc.AddToken("CA", BBox{84, 60, 96, 70});
  doc.AddToken("94025", BBox{100, 60, 130, 70});
  DetectAndAssignLines(doc);
  return doc;
}

TEST(AnnotatorsTest, GenerateCandidatesFindsAllTypes) {
  Document doc = AnnotatorDoc();
  auto candidates = GenerateCandidates(doc);
  auto count = [&](FieldType type) {
    int n = 0;
    for (const Candidate& c : candidates) {
      if (c.type == type) ++n;
    }
    return n;
  };
  EXPECT_EQ(count(FieldType::kDate), 2);     // slashed + month-name
  EXPECT_EQ(count(FieldType::kMoney), 1);
  EXPECT_EQ(count(FieldType::kAddress), 1);  // 4521 Maple St, CA 94025
  EXPECT_GE(count(FieldType::kString), 2);   // "Invoice Date", "Total", ...
}

TEST(AnnotatorsTest, MonthNameDateSpansThreeTokens) {
  Document doc = AnnotatorDoc();
  auto dates = GenerateCandidates(doc, FieldType::kDate);
  bool found = false;
  for (const Candidate& c : dates) {
    if (c.num_tokens == 3) {
      EXPECT_EQ(doc.TextOfRange(c.first_token, 3), "Jan 3, 2023");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AnnotatorsTest, CandidatesNonOverlappingWithinType) {
  Document doc = GenerateDocument(EarningsSpec(), "x", 0, Rng(3));
  auto candidates = GenerateCandidates(doc);
  for (size_t i = 0; i < candidates.size(); ++i) {
    for (size_t j = i + 1; j < candidates.size(); ++j) {
      bool overlap = candidates[i].first_token < candidates[j].end_token() &&
                     candidates[j].first_token < candidates[i].end_token();
      EXPECT_FALSE(overlap) << i << " vs " << j;
    }
  }
}

TEST(AnnotatorsTest, GeneratedMoneyValuesAreCandidates) {
  // Annotators must recall the generator's money values (the paper's
  // "common off-the-shelf annotators" assumption).
  Document doc = GenerateDocument(EarningsSpec(), "x", 1, Rng(9));
  auto money = GenerateCandidates(doc, FieldType::kMoney);
  for (const EntitySpan& span : doc.annotations()) {
    if (EarningsSpec().Schema().TypeOf(span.field) != FieldType::kMoney) {
      continue;
    }
    bool covered = false;
    for (const Candidate& c : money) {
      if (c.first_token == span.first_token) covered = true;
    }
    EXPECT_TRUE(covered) << span.field << " " << doc.TextOf(span);
  }
}

TEST(AnnotatorsTest, CandidateFromSpan) {
  Candidate c = CandidateFromSpan(EntitySpan{"f", 3, 2}, FieldType::kDate);
  EXPECT_EQ(c.first_token, 3);
  EXPECT_EQ(c.num_tokens, 2);
  EXPECT_EQ(c.type, FieldType::kDate);
}

// ---- BIO utilities --------------------------------------------------------

TEST(BioTest, ClassLayout) {
  EXPECT_EQ(BioNumClasses(3), 7);
  EXPECT_EQ(BioBeginClass(0), 1);
  EXPECT_EQ(BioInsideClass(0), 2);
  EXPECT_EQ(BioBeginClass(2), 5);
  EXPECT_EQ(BioFieldOf(0), -1);
  EXPECT_EQ(BioFieldOf(1), 0);
  EXPECT_EQ(BioFieldOf(6), 2);
  EXPECT_TRUE(BioIsBegin(5));
  EXPECT_FALSE(BioIsBegin(6));
  EXPECT_FALSE(BioIsBegin(0));
}

// ---- Candidate model ------------------------------------------------------

TEST(CandidateModelTest, EncodeShapes) {
  CandidateModelConfig config;
  config.num_neighbors = 8;
  CandidateScoringModel model(config, {"a", "b"});
  Document doc = GenerateDocument(InvoicesSpec(), "x", 0, Rng(4));
  ASSERT_FALSE(doc.annotations().empty());
  Candidate cand = CandidateFromSpan(doc.annotations()[0], FieldType::kString);
  CandidateEncoding enc = model.Encode(doc, cand);
  EXPECT_LE(enc.neighbor_ids.size(), 8u);
  EXPECT_GT(enc.neighbor_ids.size(), 0u);
  EXPECT_EQ(enc.neighbor_encodings.rows(),
            static_cast<int>(enc.neighbor_ids.size()));
  EXPECT_EQ(enc.neighbor_encodings.cols(), config.d_model);
  EXPECT_EQ(enc.neighborhood.rows(), 1);
  EXPECT_EQ(enc.neighborhood.cols(), config.d_model);
}

TEST(CandidateModelTest, NeighborsExcludeCandidateTokens) {
  CandidateModelConfig config;
  CandidateScoringModel model(config, {"a"});
  Document doc = GenerateDocument(InvoicesSpec(), "x", 1, Rng(5));
  ASSERT_FALSE(doc.annotations().empty());
  const EntitySpan& span = doc.annotations()[0];
  Candidate cand = CandidateFromSpan(span, FieldType::kString);
  CandidateEncoding enc = model.Encode(doc, cand);
  for (int id : enc.neighbor_ids) {
    EXPECT_FALSE(span.Covers(id));
  }
}

TEST(CandidateModelTest, PretrainReducesLoss) {
  CandidateModelConfig config;
  config.num_neighbors = 12;
  DomainSpec invoices = InvoicesSpec();
  std::vector<std::string> fields;
  for (const FieldDef& def : invoices.fields) fields.push_back(def.spec.name);
  CandidateScoringModel model(config, fields);
  auto corpus = GenerateCorpus(invoices, 25, 77, "inv");

  CandidateTrainOptions one_epoch;
  one_epoch.epochs = 1;
  double first = model.Pretrain(corpus, invoices.Schema(), one_epoch);
  CandidateTrainOptions more;
  more.epochs = 2;
  double later = model.Pretrain(corpus, invoices.Schema(), more);
  EXPECT_LT(later, first);
  EXPECT_LT(later, 0.45) << "should beat the ~0.64 chance-level BCE";
}

// ---- Sequence model -------------------------------------------------------

SequenceModelConfig TinySeqConfig() {
  SequenceModelConfig config;
  config.d_model = 16;
  config.spatial_neighbors = 6;
  return config;
}

TEST(SequenceModelTest, EncodeDocShapesAndLabels) {
  DomainSpec spec = FaraSpec();
  SequenceLabelingModel model(TinySeqConfig(), spec.Schema());
  Document doc = GenerateDocument(spec, "x", 0, Rng(6));
  EncodedDoc encoded = model.EncodeDoc(doc);
  EXPECT_EQ(encoded.num_tokens, doc.num_tokens());
  EXPECT_EQ(encoded.text_ids.size(), static_cast<size_t>(encoded.num_tokens));
  EXPECT_EQ(encoded.labels.size(), static_cast<size_t>(encoded.num_tokens));
  EXPECT_EQ(encoded.neighbors.size(),
            static_cast<size_t>(encoded.num_tokens));
  // Every token's neighbor list contains itself.
  for (int i = 0; i < encoded.num_tokens; ++i) {
    EXPECT_NE(std::find(encoded.neighbors[static_cast<size_t>(i)].begin(),
                        encoded.neighbors[static_cast<size_t>(i)].end(), i),
              encoded.neighbors[static_cast<size_t>(i)].end());
  }
  // Labels are consistent with annotations.
  int labeled = 0;
  for (int label : encoded.labels) {
    if (label != 0) ++labeled;
  }
  int annotated = 0;
  for (const EntitySpan& span : doc.annotations()) annotated += span.num_tokens;
  EXPECT_EQ(labeled, annotated);
}

TEST(SequenceModelTest, LogitsShape) {
  DomainSpec spec = FaraSpec();
  SequenceLabelingModel model(TinySeqConfig(), spec.Schema());
  Document doc = GenerateDocument(spec, "x", 1, Rng(7));
  EncodedDoc encoded = model.EncodeDoc(doc);
  Var logits = model.Logits(encoded);
  EXPECT_EQ(logits->value.rows(), encoded.num_tokens);
  EXPECT_EQ(logits->value.cols(),
            BioNumClasses(static_cast<int>(spec.Schema().num_fields())));
}

TEST(SequenceModelTest, PredictAppliesSingleSpanConstraint) {
  DomainSpec spec = FaraSpec();
  SequenceLabelingModel model(TinySeqConfig(), spec.Schema());
  Document doc = GenerateDocument(spec, "x", 2, Rng(8));
  std::vector<EntitySpan> predicted = model.Predict(doc);
  std::set<std::string> fields;
  for (const EntitySpan& span : predicted) {
    EXPECT_TRUE(fields.insert(span.field).second)
        << "duplicate span for " << span.field;
  }
}

TEST(SequenceModelTest, CanOverfitSingleDocument) {
  DomainSpec spec = FaraSpec();
  SequenceModelConfig config = TinySeqConfig();
  SequenceLabelingModel model(config, spec.Schema());
  Document doc = GenerateDocument(spec, "x", 0, Rng(9));
  ASSERT_GE(doc.annotations().size(), 3u);

  EncodedDoc encoded = model.EncodeDoc(doc);
  AdamOptimizer optimizer(model.Params());
  for (int step = 0; step < 150; ++step) {
    Var loss = model.Loss(encoded);
    Backward(loss);
    optimizer.Step();
  }
  // After overfitting, the model must reproduce the gold annotations.
  std::vector<EntitySpan> predicted = model.Predict(doc);
  int hits = 0;
  for (const EntitySpan& gold : doc.annotations()) {
    for (const EntitySpan& p : predicted) {
      if (p == gold) ++hits;
    }
  }
  EXPECT_GE(hits, static_cast<int>(doc.annotations().size()) - 1);
}

TEST(SequenceModelTest, MaxTokensTruncates) {
  SequenceModelConfig config = TinySeqConfig();
  config.max_tokens = 10;
  DomainSpec spec = EarningsSpec();
  SequenceLabelingModel model(config, spec.Schema());
  Document doc = GenerateDocument(spec, "x", 0, Rng(10));
  ASSERT_GT(doc.num_tokens(), 10);
  EncodedDoc encoded = model.EncodeDoc(doc);
  EXPECT_EQ(encoded.num_tokens, 10);
}

// ---- Trainer --------------------------------------------------------------

TEST(TrainerTest, TrainingImprovesOverInit) {
  DomainSpec spec = FaraSpec();
  auto train_docs = GenerateCorpus(spec, 12, 31, "t");
  auto test_docs = GenerateCorpus(spec, 10, 32, "e");

  SequenceLabelingModel model(TinySeqConfig(), spec.Schema());
  double before = MicroF1OnDocs(model, test_docs);

  TrainOptions options;
  options.total_steps = 500;
  options.validate_every = 100;
  TrainResult result = TrainSequenceModel(model, train_docs, {}, options);
  double after = MicroF1OnDocs(model, test_docs);
  EXPECT_EQ(result.steps, 500);
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.15);
}

TEST(TrainerTest, DeterministicGivenSeeds) {
  DomainSpec spec = FaraSpec();
  auto train_docs = GenerateCorpus(spec, 8, 41, "t");
  TrainOptions options;
  options.total_steps = 120;

  SequenceLabelingModel a(TinySeqConfig(), spec.Schema());
  SequenceLabelingModel b(TinySeqConfig(), spec.Schema());
  TrainSequenceModel(a, train_docs, {}, options);
  TrainSequenceModel(b, train_docs, {}, options);
  auto pa = a.Params();
  auto pb = b.Params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].param->value, pb[i].param->value) << pa[i].name;
  }
}

TEST(TrainerTest, SyntheticFractionZeroIgnoresSynthetics) {
  DomainSpec spec = FaraSpec();
  auto train_docs = GenerateCorpus(spec, 6, 51, "t");
  // A poisoned synthetic that would corrupt training if sampled.
  std::vector<Document> poison = GenerateCorpus(spec, 2, 52, "p");
  for (Document& doc : poison) {
    for (EntitySpan& span : doc.mutable_annotations()) {
      span.field = "registration_date";
      span.num_tokens = 1;
    }
  }

  TrainOptions options;
  options.total_steps = 120;
  options.synthetic_fraction = 0.0;
  SequenceLabelingModel with_poison(TinySeqConfig(), spec.Schema());
  TrainSequenceModel(with_poison, train_docs, poison, options);
  SequenceLabelingModel without(TinySeqConfig(), spec.Schema());
  TrainSequenceModel(without, train_docs, {}, options);
  auto pa = with_poison.Params();
  auto pb = without.Params();
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].param->value, pb[i].param->value) << pa[i].name;
  }
}

TEST(TrainOptionsTest, DefaultsValidateCleanly) {
  EXPECT_EQ(SequenceTrainOptions{}.Validate(), "");
  EXPECT_EQ(CandidatePretrainOptions{}.Validate(), "");
}

TEST(TrainOptionsTest, ValidateNamesFieldValueAndLegalRange) {
  SequenceTrainOptions options;
  options.total_steps = 0;
  std::string error = options.Validate();
  EXPECT_NE(error.find("TrainOptions.total_steps"), std::string::npos);
  EXPECT_NE(error.find("= 0"), std::string::npos);

  options = {};
  options.learning_rate = -1.0f;
  EXPECT_NE(options.Validate().find("learning_rate"), std::string::npos);

  options = {};
  options.validate_every = 0;
  EXPECT_NE(options.Validate().find("validate_every"), std::string::npos);

  options = {};
  options.synthetic_fraction = 1.5;
  EXPECT_NE(options.Validate().find("synthetic_fraction"),
            std::string::npos);
}

TEST(TrainOptionsTest, CandidateValidateCoversEachField) {
  CandidatePretrainOptions options;
  options.epochs = 0;
  EXPECT_NE(options.Validate().find("CandidateTrainOptions.epochs"),
            std::string::npos);

  options = {};
  options.learning_rate = 0.0f;
  EXPECT_NE(options.Validate().find("learning_rate"), std::string::npos);

  options = {};
  options.negatives_per_positive = -1;
  EXPECT_NE(options.Validate().find("negatives_per_positive"),
            std::string::npos);
}

}  // namespace
}  // namespace fieldswap
