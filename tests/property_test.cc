// Cross-domain property sweeps: invariants that must hold for every domain
// and seed, exercised with parameterized suites (the repo-wide safety net
// for the generator -> OCR -> FieldSwap -> training data path).

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <string>

#include "attack/perturbation.h"
#include "core/human_expert.h"
#include "core/pipeline.h"
#include "doc/serialize.h"
#include "model/sequence_model.h"
#include "serve/flat_snapshot.h"
#include "serve/snapshot.h"
#include "synth/domains.h"
#include "synth/generator.h"

namespace fieldswap {
namespace {

class DomainPropertyTest : public ::testing::TestWithParam<const char*> {
 protected:
  DomainSpec spec_ = SpecByName(GetParam());
};

TEST_P(DomainPropertyTest, CorpusGenerationIsDeterministic) {
  auto a = GenerateCorpus(spec_, 6, 12345, "p");
  auto b = GenerateCorpus(spec_, 6, 12345, "p");
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].SameTokenTexts(b[i]));
    EXPECT_EQ(a[i].annotations(), b[i].annotations());
  }
}

TEST_P(DomainPropertyTest, EveryDocumentIsStructurallyValid) {
  for (uint64_t seed : {1ULL, 99ULL}) {
    for (const Document& doc : GenerateCorpus(spec_, 8, seed, "p")) {
      EXPECT_GT(doc.num_tokens(), 0);
      // Every token belongs to exactly one detected line.
      std::set<int> assigned;
      for (const Line& line : doc.lines()) {
        for (int ti : line.token_indices) {
          EXPECT_TRUE(assigned.insert(ti).second) << "token in two lines";
          EXPECT_GE(ti, 0);
          EXPECT_LT(ti, doc.num_tokens());
        }
      }
      EXPECT_EQ(static_cast<int>(assigned.size()), doc.num_tokens());
      // Annotations reference schema fields and stay in range; no two
      // annotations overlap (the generator emits disjoint values).
      DomainSchema schema = spec_.Schema();
      for (size_t i = 0; i < doc.annotations().size(); ++i) {
        const EntitySpan& span = doc.annotations()[i];
        EXPECT_TRUE(schema.Has(span.field)) << span.field;
        EXPECT_GE(span.first_token, 0);
        EXPECT_LE(span.end_token(), doc.num_tokens());
        for (size_t j = i + 1; j < doc.annotations().size(); ++j) {
          const EntitySpan& other = doc.annotations()[j];
          EXPECT_FALSE(span.first_token < other.end_token() &&
                       other.first_token < span.end_token())
              << span.field << " overlaps " << other.field;
        }
      }
    }
  }
}

TEST_P(DomainPropertyTest, TokensStayOnPage) {
  for (const Document& doc : GenerateCorpus(spec_, 5, 7, "p")) {
    for (const Token& tok : doc.tokens()) {
      EXPECT_GE(tok.box.x_min, 0.0);
      EXPECT_GE(tok.box.y_min, 0.0);
      EXPECT_LE(tok.box.y_max, doc.height());
      // Long values in a right-hand column plus scan jitter can overflow
      // the nominal page edge (as on real skewed scans), but only mildly.
      EXPECT_LE(tok.box.x_max, doc.width() * 1.25);
    }
  }
}

TEST_P(DomainPropertyTest, HumanExpertSyntheticsPreserveInvariants) {
  auto docs = GenerateCorpus(spec_, 6, 21, "p");
  FieldSwapPipelineOptions options;
  options.strategy = MappingStrategy::kHumanExpert;
  options.swap.max_synthetics = 200;
  AugmentationResult result = RunFieldSwap(docs, spec_, nullptr, options);
  DomainSchema schema = spec_.Schema();

  for (const Document& synthetic : result.synthetics) {
    // Provenance id, valid annotations, schema-known fields.
    EXPECT_NE(synthetic.id().find("#swap:"), std::string::npos);
    for (const EntitySpan& span : synthetic.annotations()) {
      EXPECT_TRUE(schema.Has(span.field)) << span.field;
      EXPECT_LE(span.end_token(), synthetic.num_tokens());
      EXPECT_GT(span.num_tokens, 0);
    }
    // Line ids still cover all tokens after replacement splices.
    for (const Token& tok : synthetic.tokens()) {
      EXPECT_GE(tok.line, 0);
      EXPECT_LT(tok.line, static_cast<int>(synthetic.lines().size()));
    }
  }
}

TEST_P(DomainPropertyTest, DiscardRuleImpliesTextChange) {
  auto docs = GenerateCorpus(spec_, 5, 31, "p");
  FieldSwapPipelineOptions options;
  options.strategy = MappingStrategy::kHumanExpert;
  AugmentationResult result = RunFieldSwap(docs, spec_, nullptr, options);
  // Every kept synthetic must differ textually from its source document.
  for (const Document& synthetic : result.synthetics) {
    std::string source_id =
        synthetic.id().substr(0, synthetic.id().find("#swap:"));
    for (const Document& original : docs) {
      if (original.id() != source_id) continue;
      EXPECT_FALSE(synthetic.SameTokenTexts(original)) << synthetic.id();
    }
  }
}

TEST_P(DomainPropertyTest, AttacksAreIdentityAtSeverityZero) {
  auto docs = GenerateCorpus(spec_, 4, 97, "p");
  for (const auto& attack : attack::BuildAttackSuite(spec_)) {
    std::vector<Document> out =
        attack::PerturbCorpus(docs, *attack, 0.0, 1234);
    ASSERT_EQ(out.size(), docs.size());
    for (size_t i = 0; i < docs.size(); ++i) {
      EXPECT_EQ(DocumentToJson(out[i]), DocumentToJson(docs[i]))
          << attack->name();
    }
  }
}

TEST_P(DomainPropertyTest, AttacksPreserveDocumentInvariants) {
  auto docs = GenerateCorpus(spec_, 5, 98, "p");
  DomainSchema schema = spec_.Schema();
  for (const auto& attack : attack::BuildAttackSuite(spec_)) {
    for (const Document& doc :
         attack::PerturbCorpus(docs, *attack, 0.7, 4321)) {
      EXPECT_GT(doc.num_tokens(), 0) << attack->name();
      // Annotations stay in-bounds on schema fields; attacks may drop
      // labels but never invent or corrupt ground truth.
      for (const EntitySpan& span : doc.annotations()) {
        EXPECT_TRUE(schema.Has(span.field)) << attack->name();
        EXPECT_GE(span.first_token, 0) << attack->name();
        EXPECT_GT(span.num_tokens, 0) << attack->name();
        EXPECT_LE(span.end_token(), doc.num_tokens()) << attack->name();
      }
      // Bounding boxes stay normalized.
      for (const Token& tok : doc.tokens()) {
        EXPECT_LE(tok.box.x_min, tok.box.x_max) << attack->name();
        EXPECT_LE(tok.box.y_min, tok.box.y_max) << attack->name();
      }
      // Every token sits in exactly one valid line.
      std::set<int> assigned;
      for (const Line& line : doc.lines()) {
        for (int ti : line.token_indices) {
          EXPECT_TRUE(assigned.insert(ti).second)
              << attack->name() << ": token in two lines";
          EXPECT_GE(ti, 0);
          EXPECT_LT(ti, doc.num_tokens());
        }
      }
      EXPECT_EQ(static_cast<int>(assigned.size()), doc.num_tokens())
          << attack->name();
    }
  }
}

TEST_P(DomainPropertyTest, AttacksNeverGrowAnnotationCount) {
  auto docs = GenerateCorpus(spec_, 5, 99, "p");
  for (const auto& attack : attack::BuildAttackSuite(spec_)) {
    std::vector<Document> out =
        attack::PerturbCorpus(docs, *attack, 1.0, 555);
    for (size_t i = 0; i < docs.size(); ++i) {
      EXPECT_LE(out[i].annotations().size(), docs[i].annotations().size())
          << attack->name();
    }
  }
}

TEST_P(DomainPropertyTest, AttacksAreDeterministicForAFixedSeed) {
  auto docs = GenerateCorpus(spec_, 4, 100, "p");
  for (const auto& attack : attack::BuildAttackSuite(spec_)) {
    std::vector<Document> a =
        attack::PerturbCorpus(docs, *attack, 0.6, 2024);
    std::vector<Document> b =
        attack::PerturbCorpus(docs, *attack, 0.6, 2024);
    for (size_t i = 0; i < docs.size(); ++i) {
      EXPECT_EQ(DocumentToJson(a[i]), DocumentToJson(b[i])) << attack->name();
    }
  }
}

TEST_P(DomainPropertyTest, SequenceModelHandlesEveryDomain) {
  SequenceModelConfig config;
  config.d_model = 16;
  SequenceLabelingModel model(config, spec_.Schema());
  Document doc = GenerateDocument(spec_, "p", 0, Rng(41));
  EncodedDoc encoded = model.EncodeDoc(doc);
  Var logits = model.Logits(encoded);
  EXPECT_EQ(logits->value.rows(), encoded.num_tokens);
  for (const EntitySpan& span : model.PredictEncoded(encoded)) {
    EXPECT_TRUE(spec_.Schema().Has(span.field));
  }
}

// ---- Flat snapshot round trip (ISSUE 8) -----------------------------------

// MakeSnapshot -> WriteFlatSnapshot -> LoadFlatSnapshot must reproduce
// extraction byte-identically for every domain, in both float and int8
// serving modes. The loaded model's weights are zero-copy views into the
// mapping, so this sweep also proves the view-mode Matrix path computes
// exactly what the owning path does.
TEST_P(DomainPropertyTest, FlatSnapshotRoundTripIsByteIdentical) {
  for (bool int8 : {false, true}) {
    SequenceModelConfig config;
    config.d_model = 16;
    config.seed = 77;
    auto original = serve::MakeSnapshot(
        SequenceLabelingModel(config, spec_.Schema()), "round-trip", int8);
    std::string path = ::testing::TempDir() + "/flat_" +
                       std::string(GetParam()) + (int8 ? "_i8" : "_f32") +
                       ".fsfl";
    std::string error;
    ASSERT_TRUE(serve::WriteFlatSnapshot(path, *original, &error)) << error;

    std::shared_ptr<const serve::ModelSnapshot> loaded =
        serve::LoadFlatSnapshot(path, &error);
    ASSERT_NE(loaded, nullptr) << error;
    EXPECT_EQ(loaded->version(), "round-trip");
    ASSERT_EQ(loaded->int8_plan() != nullptr, int8)
        << "int8 plans must survive the flat format";

    for (const Document& doc : GenerateCorpus(spec_, 4, 55, "flat")) {
      EncodedDoc original_encoded = original->model().EncodeDoc(doc);
      EncodedDoc loaded_encoded = loaded->model().EncodeDoc(doc);
      EXPECT_EQ(original->PredictEncoded(original_encoded, int8),
                loaded->PredictEncoded(loaded_encoded, int8));
    }
  }
}

// ---- Hostile flat files ---------------------------------------------------

namespace {
void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}
}  // namespace

// Truncated, bit-flipped, and mislabeled files must fail with a clean
// error — never crash, read out of bounds, or hand back a half-built
// snapshot. tools/check_sanitizers.sh runs this under ASan/UBSan, which
// turns "no UB" from a hope into a checked property.
TEST(FlatSnapshotHostileTest, TruncatedAndCorruptedFilesFailCleanly) {
  SequenceModelConfig config;
  config.d_model = 16;
  config.seed = 3;
  auto snapshot = serve::MakeSnapshot(
      SequenceLabelingModel(config, SpecByName("fara").Schema()), "h",
      /*with_int8_plan=*/true);
  std::string valid_path = ::testing::TempDir() + "/hostile_valid.fsfl";
  std::string error;
  ASSERT_TRUE(serve::WriteFlatSnapshot(valid_path, *snapshot, &error))
      << error;
  std::ifstream in(valid_path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 256u);
  ASSERT_NE(serve::LoadFlatSnapshot(valid_path, &error), nullptr) << error;

  std::string hostile_path = ::testing::TempDir() + "/hostile.fsfl";

  // Every truncation must be rejected: nothing (not even the header),
  // a partial header, exactly the header, a partial directory, and
  // one-byte-short of valid.
  for (size_t keep :
       {size_t{0}, size_t{1}, size_t{33}, size_t{63}, size_t{64}, size_t{65},
        bytes.size() / 4, bytes.size() / 2, bytes.size() - 1}) {
    WriteBytes(hostile_path, bytes.substr(0, keep));
    error.clear();
    EXPECT_EQ(serve::LoadFlatSnapshot(hostile_path, &error), nullptr)
        << "truncated to " << keep << " bytes";
    EXPECT_FALSE(error.empty()) << "truncated to " << keep << " bytes";
  }

  // Single corrupted bytes: magic, format version, recorded file size,
  // checksum, metadata region, payload middle, and the final byte. Each
  // must be caught (structurally or by the checksum) with a clean error.
  for (size_t offset : {size_t{0}, size_t{4}, size_t{8}, size_t{16},
                        size_t{70}, bytes.size() / 2, bytes.size() - 1}) {
    std::string corrupted = bytes;
    corrupted[offset] = static_cast<char>(corrupted[offset] ^ 0x5A);
    WriteBytes(hostile_path, corrupted);
    error.clear();
    EXPECT_EQ(serve::LoadFlatSnapshot(hostile_path, &error), nullptr)
        << "corrupted byte at offset " << offset;
    EXPECT_FALSE(error.empty()) << "corrupted byte at offset " << offset;
  }

  // A missing file is an error, not an abort.
  error.clear();
  EXPECT_EQ(serve::LoadFlatSnapshot(::testing::TempDir() + "/nonexistent.fsfl",
                                    &error),
            nullptr);
  EXPECT_FALSE(error.empty());
}

INSTANTIATE_TEST_SUITE_P(AllDomains, DomainPropertyTest,
                         ::testing::Values("fara", "fcc_forms",
                                           "brokerage_statements", "earnings",
                                           "loan_payments"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace fieldswap
