// Cross-domain property sweeps: invariants that must hold for every domain
// and seed, exercised with parameterized suites (the repo-wide safety net
// for the generator -> OCR -> FieldSwap -> training data path).

#include <gtest/gtest.h>

#include <set>

#include "core/human_expert.h"
#include "core/pipeline.h"
#include "model/sequence_model.h"
#include "synth/domains.h"
#include "synth/generator.h"

namespace fieldswap {
namespace {

class DomainPropertyTest : public ::testing::TestWithParam<const char*> {
 protected:
  DomainSpec spec_ = SpecByName(GetParam());
};

TEST_P(DomainPropertyTest, CorpusGenerationIsDeterministic) {
  auto a = GenerateCorpus(spec_, 6, 12345, "p");
  auto b = GenerateCorpus(spec_, 6, 12345, "p");
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].SameTokenTexts(b[i]));
    EXPECT_EQ(a[i].annotations(), b[i].annotations());
  }
}

TEST_P(DomainPropertyTest, EveryDocumentIsStructurallyValid) {
  for (uint64_t seed : {1ULL, 99ULL}) {
    for (const Document& doc : GenerateCorpus(spec_, 8, seed, "p")) {
      EXPECT_GT(doc.num_tokens(), 0);
      // Every token belongs to exactly one detected line.
      std::set<int> assigned;
      for (const Line& line : doc.lines()) {
        for (int ti : line.token_indices) {
          EXPECT_TRUE(assigned.insert(ti).second) << "token in two lines";
          EXPECT_GE(ti, 0);
          EXPECT_LT(ti, doc.num_tokens());
        }
      }
      EXPECT_EQ(static_cast<int>(assigned.size()), doc.num_tokens());
      // Annotations reference schema fields and stay in range; no two
      // annotations overlap (the generator emits disjoint values).
      DomainSchema schema = spec_.Schema();
      for (size_t i = 0; i < doc.annotations().size(); ++i) {
        const EntitySpan& span = doc.annotations()[i];
        EXPECT_TRUE(schema.Has(span.field)) << span.field;
        EXPECT_GE(span.first_token, 0);
        EXPECT_LE(span.end_token(), doc.num_tokens());
        for (size_t j = i + 1; j < doc.annotations().size(); ++j) {
          const EntitySpan& other = doc.annotations()[j];
          EXPECT_FALSE(span.first_token < other.end_token() &&
                       other.first_token < span.end_token())
              << span.field << " overlaps " << other.field;
        }
      }
    }
  }
}

TEST_P(DomainPropertyTest, TokensStayOnPage) {
  for (const Document& doc : GenerateCorpus(spec_, 5, 7, "p")) {
    for (const Token& tok : doc.tokens()) {
      EXPECT_GE(tok.box.x_min, 0.0);
      EXPECT_GE(tok.box.y_min, 0.0);
      EXPECT_LE(tok.box.y_max, doc.height());
      // Long values in a right-hand column plus scan jitter can overflow
      // the nominal page edge (as on real skewed scans), but only mildly.
      EXPECT_LE(tok.box.x_max, doc.width() * 1.25);
    }
  }
}

TEST_P(DomainPropertyTest, HumanExpertSyntheticsPreserveInvariants) {
  auto docs = GenerateCorpus(spec_, 6, 21, "p");
  FieldSwapPipelineOptions options;
  options.strategy = MappingStrategy::kHumanExpert;
  options.swap.max_synthetics = 200;
  AugmentationResult result = RunFieldSwap(docs, spec_, nullptr, options);
  DomainSchema schema = spec_.Schema();

  for (const Document& synthetic : result.synthetics) {
    // Provenance id, valid annotations, schema-known fields.
    EXPECT_NE(synthetic.id().find("#swap:"), std::string::npos);
    for (const EntitySpan& span : synthetic.annotations()) {
      EXPECT_TRUE(schema.Has(span.field)) << span.field;
      EXPECT_LE(span.end_token(), synthetic.num_tokens());
      EXPECT_GT(span.num_tokens, 0);
    }
    // Line ids still cover all tokens after replacement splices.
    for (const Token& tok : synthetic.tokens()) {
      EXPECT_GE(tok.line, 0);
      EXPECT_LT(tok.line, static_cast<int>(synthetic.lines().size()));
    }
  }
}

TEST_P(DomainPropertyTest, DiscardRuleImpliesTextChange) {
  auto docs = GenerateCorpus(spec_, 5, 31, "p");
  FieldSwapPipelineOptions options;
  options.strategy = MappingStrategy::kHumanExpert;
  AugmentationResult result = RunFieldSwap(docs, spec_, nullptr, options);
  // Every kept synthetic must differ textually from its source document.
  for (const Document& synthetic : result.synthetics) {
    std::string source_id =
        synthetic.id().substr(0, synthetic.id().find("#swap:"));
    for (const Document& original : docs) {
      if (original.id() != source_id) continue;
      EXPECT_FALSE(synthetic.SameTokenTexts(original)) << synthetic.id();
    }
  }
}

TEST_P(DomainPropertyTest, SequenceModelHandlesEveryDomain) {
  SequenceModelConfig config;
  config.d_model = 16;
  SequenceLabelingModel model(config, spec_.Schema());
  Document doc = GenerateDocument(spec_, "p", 0, Rng(41));
  EncodedDoc encoded = model.EncodeDoc(doc);
  Var logits = model.Logits(encoded);
  EXPECT_EQ(logits->value.rows(), encoded.num_tokens);
  for (const EntitySpan& span : model.PredictEncoded(encoded)) {
    EXPECT_TRUE(spec_.Schema().Has(span.field));
  }
}

INSTANTIATE_TEST_SUITE_P(AllDomains, DomainPropertyTest,
                         ::testing::Values("fara", "fcc_forms",
                                           "brokerage_statements", "earnings",
                                           "loan_payments"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace fieldswap
