// Tests for the batched extraction serving subsystem (src/serve): the
// bit-identity contract against direct Predict, admission-queue and
// deadline rejection paths, zero-downtime snapshot hot-swap under
// concurrent traffic, and the memoization caches.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "doc/document.h"
#include "model/sequence_model.h"
#include "par/parallel.h"
#include "serve/cache.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/tenant_server.h"
#include "synth/domains.h"
#include "synth/generator.h"

namespace fieldswap {
namespace serve {
namespace {

std::vector<Document> TestCorpus(int count, uint64_t seed = 91) {
  return GenerateCorpus(InvoicesSpec(), count, seed, "serve-test");
}

/// An untrained (random-init, seeded) model: Predict is still a pure
/// deterministic function of the weights, which is all these tests need.
SequenceLabelingModel TestModel(uint64_t seed = 5) {
  SequenceModelConfig config;
  config.seed = seed;
  return SequenceLabelingModel(config, InvoicesSpec().Schema());
}

// ---- LruCache -------------------------------------------------------------

TEST(LruCacheTest, EvictsLeastRecentlyUsedAndTracksStats) {
  LruCache<int> cache(2);
  cache.Put(1, std::make_shared<const int>(10));
  cache.Put(2, std::make_shared<const int>(20));
  ASSERT_NE(cache.Get(1), nullptr);  // refreshes 1; 2 is now LRU
  cache.Put(3, std::make_shared<const int>(30));
  EXPECT_EQ(cache.Get(2), nullptr);
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), 10);
  ASSERT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_GE(cache.hits(), 3);
}

TEST(LruCacheTest, PutRefreshesExistingKey) {
  LruCache<int> cache(2);
  cache.Put(1, std::make_shared<const int>(10));
  cache.Put(2, std::make_shared<const int>(20));
  cache.Put(1, std::make_shared<const int>(11));  // refresh, not insert
  cache.Put(3, std::make_shared<const int>(30));  // evicts 2, not 1
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), 11);
  EXPECT_EQ(cache.Get(2), nullptr);
}

TEST(LruCacheTest, CapacityZeroDisablesCaching) {
  LruCache<int> cache(0);
  cache.Put(1, std::make_shared<const int>(10));
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

// ---- DocContentHash -------------------------------------------------------

TEST(DocContentHashTest, IgnoresIdButSeesContent) {
  std::vector<Document> docs = TestCorpus(2);
  Document renamed = docs[0];
  renamed.set_id("a-completely-different-id");
  EXPECT_EQ(DocContentHash(docs[0]), DocContentHash(renamed))
      << "the id never reaches the model, so it must not split the cache";
  EXPECT_NE(DocContentHash(docs[0]), DocContentHash(docs[1]));

  Document retext = docs[0];
  retext.mutable_tokens()[0].text += "x";
  EXPECT_NE(DocContentHash(docs[0]), DocContentHash(retext));

  Document relabeled = docs[0];
  ASSERT_FALSE(relabeled.mutable_annotations().empty());
  relabeled.mutable_annotations()[0].field += "x";
  EXPECT_NE(DocContentHash(docs[0]), DocContentHash(relabeled))
      << "annotations feed EncodedDoc.labels, so they are content";
}

// ---- Options / status -----------------------------------------------------

TEST(ServeOptionsTest, ValidateNamesTheBadField) {
  ServeOptions options;
  EXPECT_EQ(options.Validate(), "");
  options.max_batch = 0;
  EXPECT_NE(options.Validate().find("max_batch"), std::string::npos);
  options = {};
  options.queue_capacity = -1;
  EXPECT_NE(options.Validate().find("queue_capacity"), std::string::npos);
  options = {};
  options.default_deadline_ms = -2;
  EXPECT_NE(options.Validate().find("default_deadline_ms"),
            std::string::npos);
}

TEST(ServeStatusTest, Names) {
  EXPECT_STREQ(ServeStatusName(ServeStatus::kOk), "ok");
  EXPECT_STREQ(ServeStatusName(ServeStatus::kRejectedQueueFull),
               "rejected_queue_full");
  EXPECT_STREQ(ServeStatusName(ServeStatus::kRejectedDeadline),
               "rejected_deadline");
  EXPECT_STREQ(ServeStatusName(ServeStatus::kRejectedShutdown),
               "rejected_shutdown");
}

// ---- Bit-identity contract ------------------------------------------------

TEST(ExtractionServerTest, MatchesDirectPredictAtAnyBatchAndThreadCount) {
  const int prior_threads = par::Threads();
  SequenceLabelingModel model = TestModel();
  std::vector<Document> corpus = TestCorpus(8);
  std::vector<std::vector<EntitySpan>> expected;
  for (const Document& doc : corpus) expected.push_back(model.Predict(doc));

  for (int batch : {1, 3, 16}) {
    for (int threads : {1, 4}) {
      par::SetThreads(threads);
      ServeOptions options;
      options.max_batch = batch;
      ExtractionServer server(MakeSnapshot(model), options);
      // Two passes: the second is served from the caches and must be just
      // as identical (memoization, not approximation).
      for (int pass = 0; pass < 2; ++pass) {
        std::vector<ExtractResponse> responses = server.ExtractBatch(corpus);
        ASSERT_EQ(responses.size(), corpus.size());
        for (size_t i = 0; i < responses.size(); ++i) {
          EXPECT_EQ(responses[i].status, ServeStatus::kOk);
          EXPECT_EQ(responses[i].spans, expected[i])
              << "batch=" << batch << " threads=" << threads
              << " pass=" << pass << " doc=" << i;
          EXPECT_EQ(responses[i].doc_id, corpus[i].id());
        }
      }
      server.Shutdown();
    }
  }
  par::SetThreads(prior_threads);
}

// ---- Rejection paths ------------------------------------------------------

TEST(ExtractionServerTest, QueueFullRejectsInsteadOfBlocking) {
  std::vector<Document> corpus = TestCorpus(3);
  ServeOptions options;
  options.queue_capacity = 2;
  ExtractionServer server(MakeSnapshot(TestModel()), options);

  int64_t id0 = server.Submit(corpus[0]);
  int64_t id1 = server.Submit(corpus[1]);
  EXPECT_EQ(server.queue_depth(), 2);
  int64_t id2 = server.Submit(corpus[2]);  // over capacity: shed, not block

  ExtractResponse rejected = server.Wait(id2);
  EXPECT_EQ(rejected.status, ServeStatus::kRejectedQueueFull);
  EXPECT_NE(rejected.error.find("capacity 2"), std::string::npos);
  EXPECT_TRUE(rejected.spans.empty());

  EXPECT_EQ(server.Wait(id0).status, ServeStatus::kOk);
  EXPECT_EQ(server.Wait(id1).status, ServeStatus::kOk);
  EXPECT_EQ(server.queue_depth(), 0);
}

TEST(ExtractionServerTest, ExpiredDeadlineRejectsDeterministically) {
  std::vector<Document> corpus = TestCorpus(2);
  double fake_now_ms = 0;
  ServeOptions options;
  options.clock_ms = [&fake_now_ms] { return fake_now_ms; };
  ExtractionServer server(MakeSnapshot(TestModel()), options);

  int64_t strict = server.Submit(corpus[0], /*deadline_ms=*/5);
  int64_t lenient = server.Submit(corpus[1], /*deadline_ms=*/0);  // none
  fake_now_ms = 100;  // both requests now far past the strict deadline

  ExtractResponse late = server.Wait(strict);
  EXPECT_EQ(late.status, ServeStatus::kRejectedDeadline);
  EXPECT_NE(late.error.find("deadline"), std::string::npos);
  EXPECT_EQ(server.Wait(lenient).status, ServeStatus::kOk);
}

TEST(ExtractionServerTest, DefaultDeadlineAppliesWhenSubmitDoesNotOverride) {
  std::vector<Document> corpus = TestCorpus(1);
  double fake_now_ms = 0;
  ServeOptions options;
  options.clock_ms = [&fake_now_ms] { return fake_now_ms; };
  options.default_deadline_ms = 10;
  ExtractionServer server(MakeSnapshot(TestModel()), options);

  int64_t id = server.Submit(corpus[0]);  // inherits the 10 ms default
  fake_now_ms = 50;
  EXPECT_EQ(server.Wait(id).status, ServeStatus::kRejectedDeadline);
}

TEST(ExtractionServerTest, ShutdownDrainsQueueAndFailsFast) {
  std::vector<Document> corpus = TestCorpus(2);
  ExtractionServer server(MakeSnapshot(TestModel()));
  int64_t queued = server.Submit(corpus[0]);
  server.Shutdown();
  EXPECT_EQ(server.Wait(queued).status, ServeStatus::kRejectedShutdown);
  EXPECT_EQ(server.queue_depth(), 0);
  EXPECT_EQ(server.Extract(corpus[1]).status, ServeStatus::kRejectedShutdown);
  server.Shutdown();  // idempotent
}

// ---- Caches ---------------------------------------------------------------

TEST(ExtractionServerTest, ResultCacheHitsOnRepeatAndRespectsContentHash) {
  std::vector<Document> corpus = TestCorpus(1);
  SequenceLabelingModel model = TestModel();
  ExtractionServer server(MakeSnapshot(model));

  ExtractResponse first = server.Extract(corpus[0]);
  EXPECT_EQ(first.status, ServeStatus::kOk);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(first.encoded_cache_hit);

  ExtractResponse second = server.Extract(corpus[0]);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_TRUE(second.encoded_cache_hit);
  EXPECT_EQ(second.spans, first.spans);

  // Same content under a fresh id still hits (DocContentHash ignores ids).
  Document renamed = corpus[0];
  renamed.set_id("resubmitted");
  EXPECT_TRUE(server.Extract(renamed).cache_hit);

  // Changed content misses.
  Document retext = corpus[0];
  retext.mutable_tokens()[0].text += "x";
  EXPECT_FALSE(server.Extract(retext).cache_hit);
  EXPECT_EQ(server.result_cache().hits(), 2);
}

TEST(ExtractionServerTest, EncodedCacheWorksWhenResultCacheDisabled) {
  std::vector<Document> corpus = TestCorpus(1);
  SequenceLabelingModel model = TestModel();
  ServeOptions options;
  options.result_cache_capacity = 0;
  ExtractionServer server(MakeSnapshot(model), options);

  ExtractResponse first = server.Extract(corpus[0]);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(first.encoded_cache_hit);
  ExtractResponse second = server.Extract(corpus[0]);
  EXPECT_FALSE(second.cache_hit);  // result memoization is off
  EXPECT_TRUE(second.encoded_cache_hit);
  EXPECT_EQ(second.spans, model.Predict(corpus[0]));
}

TEST(ExtractionServerTest, SnapshotSwapNeverServesStaleCacheEntries) {
  std::vector<Document> corpus = TestCorpus(1);
  SequenceLabelingModel model_a = TestModel(5);
  SequenceLabelingModel model_b = TestModel(1234);
  ExtractionServer server(MakeSnapshot(model_a, "a"));

  ExtractResponse before = server.Extract(corpus[0]);
  EXPECT_EQ(before.snapshot_version, "a");
  EXPECT_TRUE(server.Extract(corpus[0]).cache_hit);

  server.SwapSnapshot(MakeSnapshot(model_b, "b"));
  ExtractResponse after = server.Extract(corpus[0]);
  EXPECT_EQ(after.snapshot_version, "b");
  EXPECT_FALSE(after.cache_hit)
      << "cache keys include the snapshot sequence; a swap must miss";
  EXPECT_EQ(after.spans, model_b.Predict(corpus[0]));
}

// ---- Hot swap under concurrency -------------------------------------------

TEST(ExtractionServerTest, HotSwapUnderConcurrentRequestsStaysConsistent) {
  // Serial par pool: the leader path then runs encode/predict inline in
  // whichever submitter thread leads, which keeps this test focused on the
  // server's own locking (and TSan-friendly).
  const int prior_threads = par::Threads();
  par::SetThreads(1);

  std::vector<Document> corpus = TestCorpus(6);
  SequenceLabelingModel model_a = TestModel(5);
  SequenceLabelingModel model_b = TestModel(1234);
  std::vector<std::vector<EntitySpan>> expected_a, expected_b;
  for (const Document& doc : corpus) {
    expected_a.push_back(model_a.Predict(doc));
    expected_b.push_back(model_b.Predict(doc));
  }

  ServeOptions options;
  options.max_batch = 4;
  ExtractionServer server(MakeSnapshot(model_a, "a"), options);

  // Every response must be internally consistent: the payload of the
  // snapshot whose version it reports, never a mix and never stale cache.
  std::atomic<int> mismatches{0};
  std::atomic<int> served{0};
  auto hammer = [&](int worker) {
    for (int j = 0; j < 20; ++j) {
      size_t which = static_cast<size_t>(worker * 7 + j) % corpus.size();
      ExtractResponse response = server.Extract(corpus[which]);
      if (response.status != ServeStatus::kOk) {
        ++mismatches;
        continue;
      }
      const std::vector<EntitySpan>& want =
          response.snapshot_version == "a" ? expected_a[which]
                                           : expected_b[which];
      if (response.spans != want) ++mismatches;
      ++served;
    }
  };

  // fslint: allow(no-raw-thread): this test hammers the server from
  // genuinely concurrent submitters to prove swap safety; par::ParallelFor
  // would serialize through the very pool under test.
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) workers.emplace_back(hammer, w);
  server.SwapSnapshot(MakeSnapshot(model_b, "b"));
  // fslint: allow(no-raw-thread): joining the raw test threads above.
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(served.load(), 80);
  EXPECT_EQ(server.snapshot()->version(), "b");
  par::SetThreads(prior_threads);
}

// ---- Multi-tenant serving (ISSUE 8) ---------------------------------------

// The headline determinism contract: each tenant's responses through the
// MultiTenantServer are bit-identical to a single-tenant ExtractionServer
// over the same snapshot — at any thread count, any batch size, and any
// interleaving of tenant traffic. Scheduling decides which batch serves a
// document, never the bytes of the response.
TEST(MultiTenantServerTest, MatchesSingleTenantServerBitIdentically) {
  const int prior_threads = par::Threads();
  const std::vector<std::string> tenants = {"acme", "globex", "initech"};
  std::vector<Document> corpus = TestCorpus(6);

  // Per-tenant single-tenant baselines (the spec the multi-tenant path
  // must reproduce exactly).
  std::vector<std::vector<std::vector<EntitySpan>>> expected;
  for (size_t t = 0; t < tenants.size(); ++t) {
    SequenceLabelingModel model = TestModel(50 + t);
    ExtractionServer single(MakeSnapshot(model));
    std::vector<std::vector<EntitySpan>> per_doc;
    for (ExtractResponse& response : single.ExtractBatch(corpus)) {
      EXPECT_EQ(response.status, ServeStatus::kOk);
      per_doc.push_back(std::move(response.spans));
    }
    expected.push_back(std::move(per_doc));
    single.Shutdown();
  }

  // (tenant_index, doc_index) submission orders: round-robin across
  // tenants, contiguous per-tenant blocks, and strided reverse.
  using Order = std::vector<std::pair<size_t, size_t>>;
  Order round_robin, blocks, reversed;
  for (size_t d = 0; d < corpus.size(); ++d) {
    for (size_t t = 0; t < tenants.size(); ++t) round_robin.push_back({t, d});
  }
  for (size_t t = 0; t < tenants.size(); ++t) {
    for (size_t d = 0; d < corpus.size(); ++d) blocks.push_back({t, d});
  }
  reversed = round_robin;
  std::reverse(reversed.begin(), reversed.end());

  for (int threads : {1, 4}) {
    for (int batch : {1, 3, 16}) {
      for (const Order& order : {round_robin, blocks, reversed}) {
        par::SetThreads(threads);
        ServeOptions options;
        options.max_batch = batch;
        auto registry = std::make_shared<ModelRegistry>();
        for (size_t t = 0; t < tenants.size(); ++t) {
          registry->Publish(tenants[t], MakeSnapshot(TestModel(50 + t)));
        }
        MultiTenantServer server(registry, options);
        std::vector<int64_t> ids;
        for (const auto& [t, d] : order) {
          ids.push_back(server.Submit(tenants[t], corpus[d]));
        }
        for (size_t i = 0; i < order.size(); ++i) {
          const auto& [t, d] = order[i];
          ExtractResponse response = server.Wait(ids[i]);
          ASSERT_EQ(response.status, ServeStatus::kOk);
          EXPECT_EQ(response.tenant, tenants[t]);
          EXPECT_EQ(response.spans, expected[t][d])
              << "tenant=" << tenants[t] << " doc=" << d
              << " threads=" << threads << " batch=" << batch;
        }
        server.Shutdown();
      }
    }
  }
  par::SetThreads(prior_threads);
}

// Hot-swapping one tenant's model while another tenant is actively being
// served: the swap lands between batches for the swapped tenant only, and
// the untouched tenant's responses never waver.
TEST(MultiTenantServerTest, HotSwapOneTenantWhileServingAnother) {
  const int prior_threads = par::Threads();
  par::SetThreads(1);  // concurrency comes from the raw threads below

  std::vector<Document> corpus = TestCorpus(6);
  SequenceLabelingModel stable_model = TestModel(5);
  SequenceLabelingModel moving_v1 = TestModel(1234);
  SequenceLabelingModel moving_v2 = TestModel(4321);
  std::vector<std::vector<EntitySpan>> expected_stable, expected_v1,
      expected_v2;
  for (const Document& doc : corpus) {
    expected_stable.push_back(stable_model.Predict(doc));
    expected_v1.push_back(moving_v1.Predict(doc));
    expected_v2.push_back(moving_v2.Predict(doc));
  }

  auto registry = std::make_shared<ModelRegistry>();
  registry->Publish("stable", MakeSnapshot(stable_model, "stable-v1"));
  registry->Publish("moving", MakeSnapshot(moving_v1, "moving-v1"));
  ServeOptions options;
  options.max_batch = 4;
  MultiTenantServer server(registry, options);

  std::atomic<int> mismatches{0};
  std::atomic<int> served{0};
  auto hammer = [&](const std::string& tenant) {
    for (int j = 0; j < 20; ++j) {
      size_t which = static_cast<size_t>(j) % corpus.size();
      ExtractResponse response = server.Extract(tenant, corpus[which]);
      if (response.status != ServeStatus::kOk) {
        ++mismatches;
        continue;
      }
      const std::vector<EntitySpan>* want = nullptr;
      if (tenant == "stable") {
        // The swap is for "moving"; "stable" must be byte-stable through
        // it, and always on its one published version.
        want = &expected_stable[which];
        if (response.tenant_version != 1) ++mismatches;
      } else {
        want = response.tenant_version == 1 ? &expected_v1[which]
                                            : &expected_v2[which];
      }
      if (response.spans != *want) ++mismatches;
      ++served;
    }
  };

  // fslint: allow(no-raw-thread): swap-while-serving needs genuinely
  // concurrent per-tenant submitters; the par pool is serialized here.
  std::vector<std::thread> workers;
  workers.emplace_back(hammer, "stable");
  workers.emplace_back(hammer, "stable");
  workers.emplace_back(hammer, "moving");
  workers.emplace_back(hammer, "moving");
  registry->Publish("moving", MakeSnapshot(moving_v2, "moving-v2"));
  // fslint: allow(no-raw-thread): joining the raw test threads above.
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(served.load(), 80);
  EXPECT_EQ(registry->ActiveVersion("moving"), 2u);
  EXPECT_EQ(registry->ActiveVersion("stable"), 1u);

  // After the dust settles, "moving" serves v2 exactly.
  ExtractResponse settled = server.Extract("moving", corpus[0]);
  EXPECT_EQ(settled.tenant_version, 2u);
  EXPECT_EQ(settled.spans, expected_v2[0]);
  par::SetThreads(prior_threads);
}

// Cross-tenant packing: tenants whose active snapshots are the SAME
// object (shared backbone) may share a batch — leftover room after the
// turn tenant's drain is filled work-conservingly — and share cache
// entries, with responses still per-tenant correct.
TEST(MultiTenantServerTest, SharedSnapshotTenantsPackIntoOneBatch) {
  auto registry = std::make_shared<ModelRegistry>();
  std::shared_ptr<const ModelSnapshot> backbone =
      MakeSnapshot(TestModel(5), "backbone");
  registry->Publish("x", backbone);
  registry->Publish("y", backbone);
  registry->Publish("z", MakeSnapshot(TestModel(99), "own"));  // not packable
  TenantQuota quota;
  quota.queue_capacity = 16;
  quota.batch_quantum = 2;  // leaves batch room for packing
  for (const char* tenant : {"x", "y", "z"}) registry->SetQuota(tenant, quota);

  SequenceLabelingModel backbone_model = TestModel(5);
  SequenceLabelingModel own_model = TestModel(99);
  ServeOptions options;
  options.max_batch = 8;
  MultiTenantServer server(registry, options);
  std::vector<Document> corpus = TestCorpus(2);

  std::vector<int64_t> ids;
  for (const Document& doc : corpus) {
    ids.push_back(server.Submit("x", doc));
    ids.push_back(server.Submit("y", doc));
    ids.push_back(server.Submit("z", doc));
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    ExtractResponse response = server.Wait(ids[i]);
    ASSERT_EQ(response.status, ServeStatus::kOk);
    const Document& doc = corpus[i / 3];
    const SequenceLabelingModel& model =
        response.tenant == "z" ? own_model : backbone_model;
    EXPECT_EQ(response.spans, model.Predict(doc)) << response.tenant;
  }

  // Someone rode along in another tenant's batch; only x and y qualify.
  EXPECT_GT(server.stats("x").packed_docs + server.stats("y").packed_docs, 0);
  EXPECT_EQ(server.stats("z").packed_docs, 0)
      << "distinct snapshots must never pack";
  server.Shutdown();
}

// Sharded service: content-hash routing is deterministic, every shard
// shares the one registry (a publish is visible on all shards), and
// responses match direct prediction.
TEST(ShardedTenantServiceTest, RoutesDeterministicallyAndServesAllShards) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->Publish("t", MakeSnapshot(TestModel(5)));
  ShardedTenantService service(registry, 3);
  EXPECT_EQ(service.num_shards(), 3);
  SequenceLabelingModel model = TestModel(5);
  std::vector<Document> corpus = TestCorpus(9);

  std::set<int> shards_hit;
  for (const Document& doc : corpus) {
    int shard = service.ShardFor(doc);
    EXPECT_EQ(shard, service.ShardFor(doc));  // stable routing
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 3);
    shards_hit.insert(shard);
    ExtractResponse response = service.Extract("t", doc);
    EXPECT_EQ(response.status, ServeStatus::kOk);
    EXPECT_EQ(response.spans, model.Predict(doc));
  }
  EXPECT_GT(shards_hit.size(), 1u) << "9 docs should spread across shards";

  // A publish through the shared registry reaches every shard.
  SequenceLabelingModel v2 = TestModel(6);
  registry->Publish("t", MakeSnapshot(TestModel(6)));
  for (const Document& doc : corpus) {
    ExtractResponse response = service.Extract("t", doc);
    EXPECT_EQ(response.tenant_version, 2u);
    EXPECT_EQ(response.spans, v2.Predict(doc));
  }
  service.Shutdown();
}

}  // namespace
}  // namespace serve
}  // namespace fieldswap
