// Tests for the runtime lock-order validator (src/par/lock_validator.h):
// per-thread held stacks, the global acquisition graph, and the inversion
// report that names both conflicting chains. The deliberate inversions
// here go through helper functions taking OrderedMutex& — fslint's
// per-function static walker cannot see through the call, which is
// exactly the class of deadlock only the runtime validator catches.
//
// TSan-clean by construction: threads are created and joined one at a
// time, so the two conflicting acquisition orders never actually contend.

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "par/lock_validator.h"

namespace fieldswap {
namespace par {
namespace {

std::string* CapturedFailure() {
  static std::string* message = new std::string;
  return message;
}

void CaptureFailure(const std::string& message) {
  *CapturedFailure() = message;
}

/// Acquires `first` then `second`, then releases both — recording the
/// edge first -> second (or failing if the graph shows the opposite
/// order). Taking the mutexes by reference keeps the acquisition
/// invisible to fslint's static walker: this is the runtime validator's
/// half of the concurrency story.
void AcquireInOrder(util::OrderedMutex& first, util::OrderedMutex& second) {
  first.lock();
  second.lock();
  second.unlock();
  first.unlock();
}

class LockValidatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LockValidator::ResetForTesting();
    CapturedFailure()->clear();
    LockValidator::SetEnabledForTesting(true);
    previous_handler_ = LockValidator::SetFailureHandler(&CaptureFailure);
  }

  void TearDown() override {
    LockValidator::SetFailureHandler(previous_handler_);
    // Follow the environment again (not forced off): under the
    // FS_VALIDATE_LOCKS=1 ctest gate the suites after this one must stay
    // validated.
    LockValidator::ClearEnabledOverrideForTesting();
    LockValidator::ResetForTesting();
  }

  LockValidator::FailureHandler previous_handler_ = nullptr;
};

TEST_F(LockValidatorTest, ConsistentOrderIsClean) {
  util::OrderedMutex outer{"lockval_test::clean_outer"};
  util::OrderedMutex inner{"lockval_test::clean_inner"};
  AcquireInOrder(outer, inner);
  AcquireInOrder(outer, inner);  // same order again: still clean
  EXPECT_TRUE(CapturedFailure()->empty()) << *CapturedFailure();
}

TEST_F(LockValidatorTest, InversionAcrossThreadsNamesBothChains) {
  util::OrderedMutex outer{"lockval_test::outer"};
  util::OrderedMutex inner{"lockval_test::inner"};
  // First thread establishes outer -> inner; joined before the second
  // starts, so the inversion is an *order* violation, never a real race.
  // fslint: allow(no-raw-thread): the validator keys held stacks by
  //   thread, so the conflicting orders must come from distinct threads
  std::thread forward(AcquireInOrder, std::ref(outer), std::ref(inner));
  forward.join();
  EXPECT_TRUE(CapturedFailure()->empty()) << *CapturedFailure();

  // fslint: allow(no-raw-thread): second thread takes the opposite order
  std::thread inverted(AcquireInOrder, std::ref(inner), std::ref(outer));
  inverted.join();

  const std::string& message = *CapturedFailure();
  ASSERT_FALSE(message.empty());
  EXPECT_NE(message.find("lock-order violation"), std::string::npos)
      << message;
  // The chain executing now...
  EXPECT_NE(message.find("held 'lockval_test::inner', acquiring "
                         "'lockval_test::outer'"),
            std::string::npos)
      << message;
  // ...and the conflicting chain recorded earlier, plus the pointer to
  // the canonical order.
  EXPECT_NE(message.find("held 'lockval_test::outer', acquiring "
                         "'lockval_test::inner'"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("tools/lock_order.txt"), std::string::npos)
      << message;
}

TEST_F(LockValidatorTest, TransitiveInversionReportsTheWholePath) {
  util::OrderedMutex a{"lockval_test::path_a"};
  util::OrderedMutex b{"lockval_test::path_b"};
  util::OrderedMutex c{"lockval_test::path_c"};
  AcquireInOrder(a, b);
  AcquireInOrder(b, c);
  EXPECT_TRUE(CapturedFailure()->empty()) << *CapturedFailure();

  // c -> a inverts a ->* c through b; both recorded hops are named.
  AcquireInOrder(c, a);
  const std::string& message = *CapturedFailure();
  ASSERT_FALSE(message.empty());
  EXPECT_NE(message.find("held 'lockval_test::path_a', acquiring "
                         "'lockval_test::path_b'"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("held 'lockval_test::path_b', acquiring "
                         "'lockval_test::path_c'"),
            std::string::npos)
      << message;
}

TEST_F(LockValidatorTest, TryLockParticipatesInTheOrder) {
  util::OrderedMutex outer{"lockval_test::try_outer"};
  util::OrderedMutex inner{"lockval_test::try_inner"};
  outer.lock();
  ASSERT_TRUE(inner.try_lock());  // records try_outer -> try_inner
  inner.unlock();
  outer.unlock();
  EXPECT_TRUE(CapturedFailure()->empty()) << *CapturedFailure();

  AcquireInOrder(inner, outer);
  EXPECT_NE(CapturedFailure()->find("lock-order violation"),
            std::string::npos)
      << *CapturedFailure();
}

TEST_F(LockValidatorTest, RecursiveAcquisitionIsItsOwnViolation) {
  int marker = 0;
  LockValidator::OnAcquire(&marker, "lockval_test::recursive");
  LockValidator::OnAcquire(&marker, "lockval_test::recursive");
  EXPECT_NE(CapturedFailure()->find("recursive acquisition"),
            std::string::npos)
      << *CapturedFailure();
  LockValidator::OnRelease(&marker);
}

TEST_F(LockValidatorTest, DisabledValidatorIsInert) {
  LockValidator::SetEnabledForTesting(false);
  util::OrderedMutex outer{"lockval_test::inert_outer"};
  util::OrderedMutex inner{"lockval_test::inert_inner"};
  AcquireInOrder(outer, inner);
  AcquireInOrder(inner, outer);  // inverted, but nobody is watching
  EXPECT_TRUE(CapturedFailure()->empty()) << *CapturedFailure();
}

TEST_F(LockValidatorTest, OrderedMutexExposesItsName) {
  util::OrderedMutex mu{"lockval_test::named"};
  EXPECT_STREQ(mu.name(), "lockval_test::named");
}

}  // namespace
}  // namespace par
}  // namespace fieldswap
