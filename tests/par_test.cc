// Tests of the deterministic parallel execution layer (src/par) and its
// determinism contract: the corpus generator, trainer, and eval harness
// must produce bit-identical results for any FIELDSWAP_THREADS value.
// SetThreads(4) on a single-core machine still exercises the pool's
// concurrency (scheduling is preemptive), just not its speedup.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "doc/serialize.h"
#include "eval/metrics.h"
#include "model/trainer.h"
#include "nn/optimizer.h"
#include "par/parallel.h"
#include "synth/domains.h"
#include "synth/generator.h"

namespace fieldswap {
namespace {

/// Restores the ambient thread count when a test exits.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) : saved_(par::Threads()) {
    par::SetThreads(n);
  }
  ~ScopedThreads() { par::SetThreads(saved_); }

 private:
  int saved_;
};

TEST(ParallelTest, ThreadsRespectsSetThreads) {
  ScopedThreads guard(3);
  EXPECT_EQ(par::Threads(), 3);
  par::SetThreads(0);  // clamped to the serial floor
  EXPECT_EQ(par::Threads(), 1);
}

TEST(ParallelTest, ParallelForRunsEveryIndexOnce) {
  ScopedThreads guard(4);
  constexpr size_t kTasks = 257;
  std::vector<std::atomic<int>> runs(kTasks);
  par::ParallelFor(kTasks, [&](size_t i) { runs[i].fetch_add(1); });
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelTest, ParallelMapPreservesOrdering) {
  ScopedThreads guard(4);
  std::vector<size_t> squares =
      par::ParallelMap(100, [](size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 100u);
  for (size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

TEST(ParallelTest, SerialFallbackMatchesPool) {
  auto work = [](size_t i) { return std::to_string(i * 31 % 7); };
  std::vector<std::string> serial, parallel;
  {
    ScopedThreads guard(1);
    serial = par::ParallelMap(50, work);
  }
  {
    ScopedThreads guard(4);
    parallel = par::ParallelMap(50, work);
  }
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelTest, NestedRegionsDegradeToSerialWithoutDeadlock) {
  ScopedThreads guard(4);
  EXPECT_FALSE(par::InParallelRegion());
  std::vector<int> totals = par::ParallelMap(8, [](size_t i) {
    EXPECT_TRUE(par::InParallelRegion());
    // The inner region must run inline on this worker, not wait for the
    // pool it is already occupying.
    std::vector<int> inner =
        par::ParallelMap(4, [&](size_t j) { return static_cast<int>(i + j); });
    int total = 0;
    for (int v : inner) total += v;
    return total;
  });
  for (size_t i = 0; i < totals.size(); ++i) {
    EXPECT_EQ(totals[i], static_cast<int>(4 * i + 6));
  }
  EXPECT_FALSE(par::InParallelRegion());
}

TEST(ParallelTest, FirstTaskExceptionPropagates) {
  ScopedThreads guard(4);
  EXPECT_THROW(
      par::ParallelFor(32,
                       [](size_t i) {
                         if (i == 7) throw std::runtime_error("task 7");
                       }),
      std::runtime_error);
  // The pool survives a throwing batch.
  std::vector<int> ok = par::ParallelMap(8, [](size_t i) {
    return static_cast<int>(i);
  });
  EXPECT_EQ(ok.size(), 8u);
}

TEST(ParallelTest, ReusesPoolAcrossManyBatches) {
  ScopedThreads guard(4);
  for (int batch = 0; batch < 50; ++batch) {
    std::vector<int> r =
        par::ParallelMap(16, [&](size_t i) { return batch + static_cast<int>(i); });
    EXPECT_EQ(r[15], batch + 15);
  }
}

// ---- Determinism contract -------------------------------------------------

std::vector<std::string> CorpusAsJson(int threads) {
  ScopedThreads guard(threads);
  std::vector<Document> docs = GenerateCorpus(FaraSpec(), 12, 99, "det");
  std::vector<std::string> json;
  json.reserve(docs.size());
  for (const Document& doc : docs) json.push_back(DocumentToJson(doc));
  return json;
}

TEST(ParallelDeterminismTest, GeneratedCorpusIsBitIdenticalAcrossThreads) {
  EXPECT_EQ(CorpusAsJson(1), CorpusAsJson(4));
}

struct TrainRunOutcome {
  TrainResult result;
  std::vector<Matrix> params;
  double eval_micro_f1 = 0;
};

TrainRunOutcome TrainRun(int threads) {
  ScopedThreads guard(threads);
  DomainSpec spec = FaraSpec();
  std::vector<Document> originals = GenerateCorpus(spec, 10, 7, "tr");
  std::vector<Document> synthetics = GenerateCorpus(spec, 6, 8, "sy");
  std::vector<Document> test_docs = GenerateCorpus(spec, 5, 9, "te");

  SequenceModelConfig config;
  config.d_model = 16;
  config.spatial_neighbors = 6;
  SequenceLabelingModel model(config, spec.Schema());

  TrainOptions options;
  options.total_steps = 120;
  options.validate_every = 40;
  TrainRunOutcome outcome;
  outcome.result = TrainSequenceModel(model, originals, synthetics, options);
  outcome.params = SnapshotParams(model.Params());
  outcome.eval_micro_f1 = EvaluateModel(model, test_docs).micro_f1;
  return outcome;
}

TEST(ParallelDeterminismTest, FullTrainingRunIsBitIdenticalAcrossThreads) {
  TrainRunOutcome serial = TrainRun(1);
  TrainRunOutcome parallel = TrainRun(4);

  EXPECT_EQ(serial.result.steps, parallel.result.steps);
  EXPECT_EQ(serial.result.final_loss, parallel.result.final_loss);
  EXPECT_EQ(serial.result.best_validation_f1,
            parallel.result.best_validation_f1);
  EXPECT_EQ(serial.eval_micro_f1, parallel.eval_micro_f1);

  ASSERT_EQ(serial.params.size(), parallel.params.size());
  for (size_t p = 0; p < serial.params.size(); ++p) {
    const Matrix& a = serial.params[p];
    const Matrix& b = parallel.params[p];
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (int r = 0; r < a.rows(); ++r) {
      for (int c = 0; c < a.cols(); ++c) {
        ASSERT_EQ(a.At(r, c), b.At(r, c))
            << "param " << p << " at (" << r << "," << c << ")";
      }
    }
  }
}

TEST(ParallelDeterminismTest, MicroF1OnDocsMatchesAcrossThreads) {
  DomainSpec spec = FaraSpec();
  std::vector<Document> docs = GenerateCorpus(spec, 6, 13, "f1");
  SequenceModelConfig config;
  config.d_model = 16;
  SequenceLabelingModel model(config, spec.Schema());
  double serial, parallel;
  {
    ScopedThreads guard(1);
    serial = MicroF1OnDocs(model, docs);
  }
  {
    ScopedThreads guard(4);
    parallel = MicroF1OnDocs(model, docs);
  }
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace fieldswap
