#include <gtest/gtest.h>

#include <cstdio>

#include "core/baselines.h"
#include "core/phrase_suggest.h"
#include "doc/serialize.h"
#include "model/decoder.h"
#include "model/sequence_model.h"
#include "ocr/line_detector.h"
#include "synth/domains.h"
#include "synth/generator.h"
#include "util/strings.h"

namespace fieldswap {
namespace {

// ---- Constrained Viterbi decoding ------------------------------------------

TEST(ViterbiTest, TransitionRules) {
  // Classes for 2 fields: O=0, B0=1, I0=2, B1=3, I1=4.
  EXPECT_TRUE(BioTransitionAllowed(0, 0));   // O -> O
  EXPECT_TRUE(BioTransitionAllowed(0, 1));   // O -> B0
  EXPECT_FALSE(BioTransitionAllowed(0, 2));  // O -> I0 illegal
  EXPECT_TRUE(BioTransitionAllowed(1, 2));   // B0 -> I0
  EXPECT_TRUE(BioTransitionAllowed(2, 2));   // I0 -> I0
  EXPECT_FALSE(BioTransitionAllowed(1, 4));  // B0 -> I1 illegal
  EXPECT_TRUE(BioTransitionAllowed(2, 3));   // I0 -> B1
}

TEST(ViterbiTest, RepairsIllegalGreedyPath) {
  // Greedy argmax would pick I0 at position 0 (illegal start) and I1 after
  // B0 (illegal transition); Viterbi must produce a legal sequence.
  Matrix logits = Matrix::FromValues(3, 5,
                                     {
                                         // O    B0   I0   B1   I1
                                         0.0f, 0.5f, 2.0f, 0.0f, 0.0f,  //
                                         0.0f, 0.0f, 1.0f, 0.0f, 0.0f,  //
                                         0.0f, 0.0f, 0.0f, 0.1f, 2.0f,  //
                                     });
  std::vector<int> tags = ViterbiDecodeBio(logits);
  ASSERT_EQ(tags.size(), 3u);
  for (size_t i = 0; i < tags.size(); ++i) {
    int prev = i == 0 ? 0 : tags[i - 1];
    if (i == 0) {
      EXPECT_TRUE(BioFieldOf(tags[0]) < 0 || BioIsBegin(tags[0]));
    } else {
      EXPECT_TRUE(BioTransitionAllowed(prev, tags[i]));
    }
  }
  // The best legal path is B0, B1, I1 (0.5 + 0.0 + 2.0): Viterbi trades
  // position 1's I0 logit for the ability to reach I1's large logit.
  EXPECT_EQ(tags, (std::vector<int>{1, 3, 4}));
}

TEST(ViterbiTest, AgreesWithGreedyWhenGreedyIsLegal) {
  Matrix logits = Matrix::FromValues(3, 3,
                                     {
                                         0.0f, 3.0f, 0.0f,  // B0
                                         0.0f, 0.0f, 3.0f,  // I0
                                         3.0f, 0.0f, 0.0f,  // O
                                     });
  std::vector<int> tags = ViterbiDecodeBio(logits);
  EXPECT_EQ(tags, (std::vector<int>{1, 2, 0}));
}

TEST(ViterbiTest, EmptyInput) {
  EXPECT_TRUE(ViterbiDecodeBio(Matrix(0, 5)).empty());
}

TEST(ViterbiTest, ModelPredictWithViterbiNeverEmitsOrphanInside) {
  SequenceModelConfig config;
  config.d_model = 16;
  config.use_viterbi_decoding = true;
  DomainSpec spec = FaraSpec();
  SequenceLabelingModel model(config, spec.Schema());
  Document doc = GenerateDocument(spec, "x", 0, Rng(3));
  // An untrained model produces near-random logits — decoding must still
  // produce structurally valid spans.
  for (const EntitySpan& span : model.Predict(doc)) {
    EXPECT_GT(span.num_tokens, 0);
    EXPECT_LE(span.end_token(), doc.num_tokens());
  }
}

// ---- EDA baseline -----------------------------------------------------------

TEST(EdaTest, SynonymPreservesCapitalization) {
  Rng rng(1);
  EXPECT_EQ(EdaSynonymFor("Total", rng), "Overall");
  EXPECT_EQ(EdaSynonymFor("total", rng), "overall");
  EXPECT_EQ(EdaSynonymFor("Zebra", rng), "Zebra") << "unknown word unchanged";
}

TEST(EdaTest, ProducesRequestedCopies) {
  auto docs = GenerateCorpus(FaraSpec(), 4, 5, "e");
  EdaOptions options;
  options.copies_per_doc = 3;
  auto augmented = GenerateEdaAugmentations(docs, options);
  EXPECT_EQ(augmented.size(), 12u);
  EXPECT_NE(augmented[0].id().find("#eda:"), std::string::npos);
}

TEST(EdaTest, NeverTouchesAnnotatedTokens) {
  auto docs = GenerateCorpus(EarningsSpec(), 3, 6, "e");
  EdaOptions options;
  options.synonym_prob = 1.0;
  options.deletion_prob = 1.0;
  options.random_swaps = 20;
  auto augmented = GenerateEdaAugmentations(docs, options);
  for (size_t i = 0; i < augmented.size(); ++i) {
    const Document& original = docs[i / static_cast<size_t>(options.copies_per_doc)];
    ASSERT_EQ(augmented[i].annotations().size(),
              original.annotations().size());
    for (size_t a = 0; a < original.annotations().size(); ++a) {
      EXPECT_EQ(augmented[i].TextOf(augmented[i].annotations()[a]),
                original.TextOf(original.annotations()[a]));
    }
  }
}

TEST(EdaTest, ActuallyPerturbsText) {
  auto docs = GenerateCorpus(EarningsSpec(), 2, 7, "e");
  EdaOptions options;
  options.synonym_prob = 0.5;
  options.deletion_prob = 0.3;
  auto augmented = GenerateEdaAugmentations(docs, options);
  int changed = 0;
  for (size_t i = 0; i < augmented.size(); ++i) {
    if (!augmented[i].SameTokenTexts(
            docs[i / static_cast<size_t>(options.copies_per_doc)])) {
      ++changed;
    }
  }
  EXPECT_GT(changed, 0);
}

// ---- Value-swap baseline ----------------------------------------------------

TEST(ValueSwapTest, ReplacesValuesKeepsLabels) {
  DomainSpec spec = EarningsSpec();
  auto docs = GenerateCorpus(spec, 3, 8, "v");
  ValueSwapOptions options;
  options.copies_per_doc = 2;
  auto augmented =
      GenerateValueSwapAugmentations(docs, spec.Schema(), options);
  ASSERT_EQ(augmented.size(), 6u);
  for (size_t i = 0; i < augmented.size(); ++i) {
    const Document& original = docs[i / 2];
    EXPECT_EQ(augmented[i].annotations().size(),
              original.annotations().size());
    // The *set* of labeled fields is unchanged; most values differ.
    int same_values = 0;
    for (const EntitySpan& span : original.annotations()) {
      EXPECT_TRUE(augmented[i].HasField(span.field)) << span.field;
      for (const EntitySpan& aug_span :
           augmented[i].AnnotationsFor(span.field)) {
        if (augmented[i].TextOf(aug_span) == original.TextOf(span)) {
          ++same_values;
        }
      }
    }
    EXPECT_LT(same_values,
              static_cast<int>(original.annotations().size()));
  }
}

TEST(ValueSwapTest, ValueTypesStayConsistent) {
  DomainSpec spec = EarningsSpec();
  auto docs = GenerateCorpus(spec, 2, 9, "v");
  auto augmented = GenerateValueSwapAugmentations(docs, spec.Schema(),
                                                  ValueSwapOptions{});
  for (const Document& doc : augmented) {
    for (const EntitySpan& span : doc.annotations()) {
      if (spec.Schema().TypeOf(span.field) == FieldType::kMoney) {
        std::string text = doc.TextOf(span);
        EXPECT_NE(text.find('.'), std::string::npos) << text;
      }
    }
  }
}

// ---- Name-derived phrase suggestion ----------------------------------------

TEST(PhraseSuggestTest, SimpleFieldNames) {
  auto phrases = SuggestPhrasesFromName("pay_date", FieldType::kDate);
  ASSERT_FALSE(phrases.empty());
  EXPECT_EQ(phrases[0].Text(), "Pay Date");
}

TEST(PhraseSuggestTest, PrefixedTableFields) {
  auto phrases =
      SuggestPhrasesFromName("year_to_date.sales_pay", FieldType::kMoney);
  std::vector<std::string> texts;
  for (const KeyPhrase& phrase : phrases) texts.push_back(phrase.Text());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "Sales Pay"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "Sales"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "YTD Sales Pay"),
            texts.end());
}

TEST(PhraseSuggestTest, TrailingBigram) {
  auto phrases =
      SuggestPhrasesFromName("payment_due_date", FieldType::kDate);
  std::vector<std::string> texts;
  for (const KeyPhrase& phrase : phrases) texts.push_back(phrase.Text());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "Payment Due Date"),
            texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "Due Date"), texts.end());
}

TEST(PhraseSuggestTest, ConfigExcludesRequestedFields) {
  DomainSchema schema = EarningsSpec().Schema();
  KeyPhraseConfig config =
      SuggestKeyPhraseConfig(schema, {"employee_name", "employer_name"});
  EXPECT_EQ(config.count("employee_name"), 0u);
  EXPECT_GT(config.count("current.salary"), 0u);
}

TEST(PhraseSuggestTest, SuggestionsOverlapTrueVocabulary) {
  // The whole point: name-derived phrases should hit real key phrases for
  // a decent share of Earnings fields, with zero training data.
  DomainSpec spec = EarningsSpec();
  KeyPhraseConfig config = SuggestKeyPhraseConfig(spec.Schema());
  int hits = 0, fields = 0;
  for (const FieldDef& def : spec.fields) {
    if (def.phrases.empty()) continue;
    ++fields;
    auto it = config.find(def.spec.name);
    if (it == config.end()) continue;
    for (const KeyPhrase& suggestion : it->second) {
      bool match = false;
      for (const std::string& truth : def.phrases) {
        if (EqualsIgnoreCase(suggestion.Text(), truth)) match = true;
      }
      if (match) {
        ++hits;
        break;
      }
    }
  }
  EXPECT_GT(hits * 2, fields) << hits << "/" << fields
                              << " fields got a true phrase from their name";
}

// ---- Document JSON serialization -------------------------------------------

TEST(SerializeDocTest, RoundTripGeneratedDocument) {
  Document original = GenerateDocument(EarningsSpec(), "rt", 2, Rng(10));
  std::string json = DocumentToJson(original);
  std::optional<Document> parsed = DocumentFromJson(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->id(), original.id());
  EXPECT_EQ(parsed->domain(), original.domain());
  EXPECT_TRUE(parsed->SameTokenTexts(original));
  EXPECT_EQ(parsed->annotations(), original.annotations());
  ASSERT_EQ(parsed->lines().size(), original.lines().size());
  for (size_t l = 0; l < original.lines().size(); ++l) {
    EXPECT_EQ(parsed->lines()[l].token_indices,
              original.lines()[l].token_indices);
  }
}

TEST(SerializeDocTest, EscapesSpecialCharacters) {
  Document doc("quote\"doc", "d", 100, 100);
  doc.AddToken("say \"hi\"", BBox{0, 0, 10, 10});
  doc.AddToken("back\\slash", BBox{20, 0, 30, 10});
  DetectAndAssignLines(doc);
  std::optional<Document> parsed = DocumentFromJson(DocumentToJson(doc));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->id(), "quote\"doc");
  EXPECT_EQ(parsed->token(0).text, "say \"hi\"");
  EXPECT_EQ(parsed->token(1).text, "back\\slash");
}

TEST(SerializeDocTest, RejectsMalformedInput) {
  EXPECT_FALSE(DocumentFromJson("").has_value());
  EXPECT_FALSE(DocumentFromJson("{}").has_value());
  EXPECT_FALSE(DocumentFromJson("{\"id\":\"x\"").has_value());
  // Out-of-range annotation.
  Document doc("x", "d", 10, 10);
  doc.AddToken("a", BBox{0, 0, 1, 1});
  std::string json = DocumentToJson(doc);
  std::string corrupted = json;
  corrupted.replace(corrupted.find("\"annotations\":[]"),
                    std::string("\"annotations\":[]").size(),
                    "\"annotations\":[{\"field\":\"f\",\"first\":5,\"count\":1}]");
  EXPECT_FALSE(DocumentFromJson(corrupted).has_value());
}

TEST(SerializeDocTest, JsonlCorpusRoundTrip) {
  auto docs = GenerateCorpus(FaraSpec(), 5, 11, "jl");
  std::string path = ::testing::TempDir() + "/corpus_test.jsonl";
  ASSERT_TRUE(SaveCorpusJsonl(path, docs));
  std::optional<std::vector<Document>> loaded = LoadCorpusJsonl(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_TRUE((*loaded)[i].SameTokenTexts(docs[i]));
    EXPECT_EQ((*loaded)[i].annotations(), docs[i].annotations());
  }
  std::remove(path.c_str());
}

TEST(SerializeDocTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadCorpusJsonl("/nonexistent/corpus.jsonl").has_value());
}

}  // namespace
}  // namespace fieldswap
