// Performance-observability tests: the util JSON model, histogram
// quantiles and the pinned export format, the span profiler (self vs total
// time, deterministic ordering, thread-merged aggregation), and the
// trajectory comparator (regression / within-tolerance / missing-metric
// semantics behind tools/bench_trajectory).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "obs/trajectory.h"
#include "par/parallel.h"
#include "util/json.h"

namespace fieldswap {
namespace {

using obs::BuildProfile;
using obs::ClassifyMetric;
using obs::CompareOptions;
using obs::CompareReport;
using obs::CompareTrajectories;
using obs::HistogramData;
using obs::HistogramQuantile;
using obs::MetricClass;
using obs::MetricsRegistry;
using obs::ProfileEntry;
using obs::ProfileReport;
using obs::TraceEvent;
using obs::TraceRecorder;
using obs::TraceSpan;
using util::JsonValue;

JsonValue ParseOrDie(const std::string& text) {
  std::optional<JsonValue> parsed = JsonValue::Parse(text);
  EXPECT_TRUE(parsed.has_value()) << "unparsable: " << text;
  return parsed.has_value() ? *parsed : JsonValue();
}

// ---------------------------------------------------------------- util/json

TEST(JsonValueTest, ParseDumpRoundTripCanonicalizes) {
  // Key order and whitespace normalize; numbers survive exactly.
  JsonValue value = ParseOrDie(
      "{\"b\": [1, 2.5, -3e2], \"a\": {\"y\": true, \"x\": null}, "
      "\"s\": \"hi\\nthere\"}");
  EXPECT_EQ(value.Dump(),
            "{\"a\": {\"x\": null, \"y\": true}, \"b\": [1, 2.5, -300], "
            "\"s\": \"hi\\nthere\"}");
  // Dump(Parse(Dump)) is a fixed point.
  EXPECT_EQ(ParseOrDie(value.Dump()).Dump(), value.Dump());
}

TEST(JsonValueTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("{\"a\": }").has_value());
  EXPECT_FALSE(JsonValue::Parse("[1, 2").has_value());
  EXPECT_FALSE(JsonValue::Parse("{\"a\": 1} trailing").has_value());
  EXPECT_FALSE(JsonValue::Parse("nul").has_value());
  EXPECT_FALSE(JsonValue::Parse("").has_value());
  EXPECT_FALSE(JsonValue::Parse("{1: 2}").has_value());
}

TEST(JsonValueTest, FormatJsonNumberIsShortestRoundTrip) {
  EXPECT_EQ(util::FormatJsonNumber(3.0), "3");
  EXPECT_EQ(util::FormatJsonNumber(-17.0), "-17");
  EXPECT_EQ(util::FormatJsonNumber(0.25), "0.25");
  EXPECT_EQ(util::FormatJsonNumber(0.1), "0.1");
  double third = 1.0 / 3.0;
  std::string text = util::FormatJsonNumber(third);
  JsonValue reparsed = ParseOrDie(text);
  EXPECT_EQ(reparsed.number_value(), third);
}

TEST(JsonValueTest, FindAndBuildHelpers) {
  JsonValue object = JsonValue::MakeObject();
  object.Set("k", JsonValue::MakeNumber(7));
  ASSERT_NE(object.Find("k"), nullptr);
  EXPECT_EQ(object.Find("k")->number_value(), 7.0);
  EXPECT_EQ(object.Find("missing"), nullptr);
  JsonValue array = JsonValue::MakeArray();
  array.Append(JsonValue::MakeString("a"));
  EXPECT_EQ(array.array_items().size(), 1u);
}

// --------------------------------------------------- histogram quantiles

HistogramData MakeHistogram(const std::vector<double>& bounds,
                            const std::vector<double>& values) {
  MetricsRegistry registry;
  for (double v : values) registry.HistogramObserve("h", v, bounds);
  return registry.Snapshot().histograms.at("h");
}

TEST(HistogramQuantileTest, InterpolatesWithinBucket) {
  // 10 values uniform in the (4, 8] bucket: p50 lands mid-bucket.
  HistogramData hist =
      MakeHistogram({4.0, 8.0}, {5, 5, 6, 6, 6, 7, 7, 7, 8, 8});
  double p50 = HistogramQuantile(hist, 0.50);
  EXPECT_GT(p50, 4.0);
  EXPECT_LE(p50, 8.0);
  // All mass in one bucket: rank q*10 of 10 interpolates linearly from the
  // bucket's lower bound.
  EXPECT_NEAR(p50, 4.0 + (8.0 - 4.0) * 0.5, 1e-9);
}

TEST(HistogramQuantileTest, TailRanksHitOverflowBucketMax) {
  HistogramData hist = MakeHistogram({1.0, 2.0}, {0.5, 1.5, 50.0, 90.0});
  // p99 rank lands in the overflow bucket, which reports the observed max.
  EXPECT_EQ(HistogramQuantile(hist, 0.99), 90.0);
  EXPECT_EQ(HistogramQuantile(hist, 1.0), 90.0);
}

TEST(HistogramQuantileTest, EmptyAndClampedInputs) {
  HistogramData empty;
  EXPECT_EQ(HistogramQuantile(empty, 0.5), 0.0);
  HistogramData hist = MakeHistogram({10.0}, {2.0, 3.0});
  // Estimates never leave the observed [min, max] envelope.
  EXPECT_GE(HistogramQuantile(hist, 0.01), 2.0);
  EXPECT_LE(HistogramQuantile(hist, 0.99), 3.0);
}

// Pins the histogram export wire format: explicit bucket bounds and
// per-bucket counts (not just summary stats) plus derived quantiles, so
// the trajectory comparator can gate tail latency from exported data.
TEST(HistogramExportTest, JsonFormatIsPinned) {
  MetricsRegistry registry;
  registry.HistogramObserve("fieldswap.test.lat_ms", 1.0, {1.0, 2.0});
  registry.HistogramObserve("fieldswap.test.lat_ms", 2.0, {1.0, 2.0});
  registry.HistogramObserve("fieldswap.test.lat_ms", 5.0, {1.0, 2.0});
  EXPECT_EQ(registry.ExportJson(),
            "{\"counters\": {}, \"gauges\": {}, \"histograms\": "
            "{\"fieldswap.test.lat_ms\": {\"count\": 3, \"sum\": 8, "
            "\"min\": 1, \"max\": 5, \"mean\": 2.66667, \"p50\": 1.5, "
            "\"p90\": 5, \"p99\": 5, "
            "\"bounds\": [1, 2], \"buckets\": [1, 1, 1]}}}");
  std::string text = registry.ExportText();
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
}

// ----------------------------------------------------------------- profiler

TraceEvent MakeEvent(const std::string& name, double ts_us, double dur_us,
                     int tid, int depth) {
  TraceEvent event;
  event.name = name;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.tid = tid;
  event.depth = depth;
  return event;
}

TEST(ProfilerTest, SelfTimeExcludesDirectChildren) {
  std::vector<TraceEvent> events;
  events.push_back(MakeEvent("parent", 0, 100, 0, 0));
  events.push_back(MakeEvent("child", 10, 30, 0, 1));
  events.push_back(MakeEvent("child", 50, 20, 0, 1));
  events.push_back(MakeEvent("grandchild", 12, 5, 0, 2));
  ProfileReport report = BuildProfile(events);

  const ProfileEntry* parent = report.Find("parent");
  ASSERT_NE(parent, nullptr);
  EXPECT_EQ(parent->count, 1);
  EXPECT_DOUBLE_EQ(parent->total_us, 100);
  // parent self = 100 - (30 + 20); the grandchild is charged to `child`.
  EXPECT_DOUBLE_EQ(parent->self_us, 50);

  const ProfileEntry* child = report.Find("child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->count, 2);
  EXPECT_DOUBLE_EQ(child->total_us, 50);
  EXPECT_DOUBLE_EQ(child->self_us, 45);

  const ProfileEntry* grandchild = report.Find("grandchild");
  ASSERT_NE(grandchild, nullptr);
  EXPECT_DOUBLE_EQ(grandchild->self_us, 5);
}

TEST(ProfilerTest, SiblingsOnOtherThreadsDoNotNest) {
  // Identical timestamps on different tids must not be treated as nesting.
  std::vector<TraceEvent> events;
  events.push_back(MakeEvent("a", 0, 100, 0, 0));
  events.push_back(MakeEvent("b", 10, 50, 1, 0));
  ProfileReport report = BuildProfile(events);
  EXPECT_DOUBLE_EQ(report.Find("a")->self_us, 100);
  EXPECT_DOUBLE_EQ(report.Find("b")->self_us, 50);
}

TEST(ProfilerTest, EntriesAreSortedByNameAndJsonIsStable) {
  std::vector<TraceEvent> events;
  events.push_back(MakeEvent("zeta", 0, 10, 0, 0));
  events.push_back(MakeEvent("alpha", 20, 10, 0, 0));
  events.push_back(MakeEvent("mid", 40, 10, 0, 0));
  ProfileReport report = BuildProfile(events, /*dropped=*/2);
  ASSERT_EQ(report.entries.size(), 3u);
  EXPECT_EQ(report.entries[0].name, "alpha");
  EXPECT_EQ(report.entries[1].name, "mid");
  EXPECT_EQ(report.entries[2].name, "zeta");
  EXPECT_EQ(report.total_spans, 3);
  EXPECT_EQ(report.dropped_spans, 2);
  EXPECT_EQ(report.ToJson(),
            "{\"dropped_spans\": 2, \"schema_version\": 1, \"spans\": "
            "{\"alpha\": {\"count\": 1, \"self_us\": 10, \"total_us\": 10}, "
            "\"mid\": {\"count\": 1, \"self_us\": 10, \"total_us\": 10}, "
            "\"zeta\": {\"count\": 1, \"self_us\": 10, \"total_us\": 10}}, "
            "\"total_spans\": 3}");
  // Text rows appear in the same (name) order so two reports diff cleanly.
  std::string text = report.ToText();
  EXPECT_LT(text.find("alpha"), text.find("mid"));
  EXPECT_LT(text.find("mid"), text.find("zeta"));
}

TEST(ProfilerTest, RealNestedSpansAggregate) {
  TraceRecorder recorder;
  {
    TraceSpan outer("outer", &recorder);
    {
      TraceSpan inner("inner", &recorder);
    }
    {
      TraceSpan inner("inner", &recorder);
    }
  }
  ProfileReport report = BuildProfile(recorder);
  ASSERT_NE(report.Find("outer"), nullptr);
  ASSERT_NE(report.Find("inner"), nullptr);
  EXPECT_EQ(report.Find("outer")->count, 1);
  EXPECT_EQ(report.Find("inner")->count, 2);
  EXPECT_GE(report.Find("outer")->total_us, report.Find("inner")->total_us);
  // outer self-time = outer total minus both inner spans.
  EXPECT_NEAR(report.Find("outer")->self_us,
              report.Find("outer")->total_us - report.Find("inner")->total_us,
              1e-6);
}

TEST(ProfilerTest, ThreadMergedAggregationUnderParPool) {
  TraceRecorder recorder;
  int threads_before = par::Threads();
  par::SetThreads(4);
  constexpr size_t kTasks = 32;
  par::ParallelFor(kTasks, [&](size_t i) {
    TraceSpan span("pooled_work", &recorder);
    (void)i;
  });
  par::SetThreads(threads_before);
  ProfileReport report = BuildProfile(recorder);
  const ProfileEntry* entry = report.Find("pooled_work");
  ASSERT_NE(entry, nullptr);
  // Every task's span is counted once, whichever worker ran it.
  EXPECT_EQ(entry->count, static_cast<int64_t>(kTasks));
  EXPECT_EQ(report.total_spans, static_cast<int64_t>(kTasks));
}

TEST(ProfilerTest, ProcessStatsSample) {
  obs::ProcessStats stats = obs::SampleProcessStats();
  EXPECT_GT(stats.peak_rss_kb, 0);
  EXPECT_GE(stats.user_cpu_s + stats.system_cpu_s, 0);

  MetricsRegistry registry;
  obs::PublishProcessGauges(registry);
  EXPECT_GT(registry.GaugeValue("fieldswap.process.peak_rss_kb"), 0);
  EXPECT_GE(registry.GaugeValue("fieldswap.process.heap_watermark_kb"),
            registry.GaugeValue("fieldswap.process.heap_in_use_kb") == 0
                ? 0
                : registry.GaugeValue("fieldswap.process.heap_in_use_kb"));
}

// --------------------------------------------------------------- trajectory

TEST(TrajectoryClassifyTest, VolatileAndExactPaths) {
  EXPECT_EQ(ClassifyMetric("benches.par_scaling.wall_time_s"),
            MetricClass::kLowerIsBetter);
  EXPECT_EQ(ClassifyMetric("benches.x.histograms.latency_ms.p99"),
            MetricClass::kLowerIsBetter);
  EXPECT_EQ(ClassifyMetric("benches.x.gauges.fieldswap.bench.micro."
                           "BM_Sparsemax_24.real_ns"),
            MetricClass::kLowerIsBetter);
  EXPECT_EQ(ClassifyMetric("benches.x.peak_rss_kb"),
            MetricClass::kLowerIsBetter);
  EXPECT_EQ(ClassifyMetric(
                "benches.x.gauges.fieldswap.par.bench.encode_pools.speedup"),
            MetricClass::kHigherIsBetter);
  EXPECT_EQ(ClassifyMetric("benches.x.gauges.generate_corpus.docs_per_s"),
            MetricClass::kHigherIsBetter);
  EXPECT_EQ(ClassifyMetric("benches.x.gauges.fieldswap.synth.docs_per_sec"),
            MetricClass::kHigherIsBetter);
  // Deterministic structure: counts stay exact even under a timing parent.
  EXPECT_EQ(ClassifyMetric("benches.x.histograms.latency_ms.count"),
            MetricClass::kExact);
  EXPECT_EQ(ClassifyMetric("benches.x.counters.fieldswap.serve.requests"),
            MetricClass::kExact);
  EXPECT_EQ(ClassifyMetric("threads"), MetricClass::kExact);
  EXPECT_TRUE(obs::IsVolatileMetric("a.self_us"));
  EXPECT_FALSE(obs::IsVolatileMetric("a.count"));
}

TEST(TrajectoryCompareTest, WithinToleranceIsOk) {
  JsonValue base = ParseOrDie(
      "{\"benches\": {\"b\": {\"wall_time_s\": 10, "
      "\"counters\": {\"fieldswap.serve.requests\": 96}}}}");
  JsonValue cand = ParseOrDie(
      "{\"benches\": {\"b\": {\"wall_time_s\": 11, "
      "\"counters\": {\"fieldswap.serve.requests\": 96}}}}");
  CompareReport report = CompareTrajectories(base, cand, CompareOptions{});
  EXPECT_TRUE(report.ok) << report.ToText();
  EXPECT_EQ(report.compared_metrics, 2);
}

TEST(TrajectoryCompareTest, TimingRegressionBeyondToleranceFails) {
  JsonValue base = ParseOrDie("{\"b\": {\"wall_time_s\": 10}}");
  JsonValue cand = ParseOrDie("{\"b\": {\"wall_time_s\": 20}}");
  CompareOptions options;
  options.tolerance = 0.35;
  CompareReport report = CompareTrajectories(base, cand, options);
  ASSERT_FALSE(report.ok);
  ASSERT_EQ(report.regressions.size(), 1u);
  EXPECT_EQ(report.regressions[0].key, "b.wall_time_s");
  EXPECT_NE(report.regressions[0].reason.find("grew"), std::string::npos);
  // The same delta passes under a 2x tolerance.
  options.tolerance = 1.5;
  EXPECT_TRUE(CompareTrajectories(base, cand, options).ok);
}

TEST(TrajectoryCompareTest, AbsoluteFloorGuardsZeroBaselines) {
  // A CPU-time gauge moving off a zero baseline is pure noise; the default
  // absolute floor (0.05 in the metric's unit) absorbs it.
  JsonValue base = ParseOrDie("{\"g\": {\"system_cpu_s\": 0}}");
  JsonValue noise = ParseOrDie("{\"g\": {\"system_cpu_s\": 0.01}}");
  JsonValue real = ParseOrDie("{\"g\": {\"system_cpu_s\": 5}}");
  EXPECT_TRUE(CompareTrajectories(base, noise, CompareOptions{}).ok);
  CompareReport report = CompareTrajectories(base, real, CompareOptions{});
  ASSERT_FALSE(report.ok);
  // The huge ratio renders as a clamped, readable percentage.
  EXPECT_NE(report.regressions[0].reason.find("1000000%"), std::string::npos);
}

TEST(TrajectoryCompareTest, UnitFloorsAbsorbMicroNoise) {
  // A 30 us swing in a span self-time or a 0.6 ms queue-wait swing is
  // scheduler noise; the per-unit floors absorb it even at huge ratios.
  JsonValue base = ParseOrDie(
      "{\"p\": {\"spans\": {\"x\": {\"self_us\": 27}}, "
      "\"queue_wait_ms\": {\"p50\": 0.2}}}");
  JsonValue cand = ParseOrDie(
      "{\"p\": {\"spans\": {\"x\": {\"self_us\": 54}}, "
      "\"queue_wait_ms\": {\"p50\": 0.8}}}");
  EXPECT_TRUE(CompareTrajectories(base, cand, CompareOptions{}).ok);
  // The same ratio above the floor still fails.
  JsonValue big_base = ParseOrDie("{\"lat_ms\": {\"p99\": 40}}");
  JsonValue big_cand = ParseOrDie("{\"lat_ms\": {\"p99\": 80}}");
  EXPECT_FALSE(CompareTrajectories(big_base, big_cand, CompareOptions{}).ok);
}

TEST(TrajectoryCompareTest, HistogramExtremesAreNotesNotRegressions) {
  JsonValue base = ParseOrDie("{\"step_ms\": {\"max\": 1.7, \"p50\": 1.0}}");
  JsonValue cand = ParseOrDie("{\"step_ms\": {\"max\": 9.0, \"p50\": 1.1}}");
  CompareReport report = CompareTrajectories(base, cand, CompareOptions{});
  EXPECT_TRUE(report.ok) << report.ToText();
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("step_ms.max"), std::string::npos);
}

TEST(TrajectoryCompareTest, HigherIsBetterDirection) {
  JsonValue base = ParseOrDie("{\"g\": {\"x.speedup\": 4}}");
  JsonValue faster = ParseOrDie("{\"g\": {\"x.speedup\": 8}}");
  JsonValue slower = ParseOrDie("{\"g\": {\"x.speedup\": 2}}");
  EXPECT_TRUE(CompareTrajectories(base, faster, CompareOptions{}).ok);
  EXPECT_FALSE(CompareTrajectories(base, slower, CompareOptions{}).ok);
}

TEST(TrajectoryCompareTest, ExactMetricDriftFails) {
  JsonValue base = ParseOrDie("{\"counters\": {\"fieldswap.docs\": 60}}");
  JsonValue cand = ParseOrDie("{\"counters\": {\"fieldswap.docs\": 61}}");
  CompareReport report = CompareTrajectories(base, cand, CompareOptions{});
  ASSERT_FALSE(report.ok);
  EXPECT_NE(report.regressions[0].reason.find("deterministic"),
            std::string::npos);
}

TEST(TrajectoryCompareTest, MissingAndNewMetricHandling) {
  JsonValue base = ParseOrDie("{\"m\": {\"old_counter\": 1}}");
  JsonValue cand = ParseOrDie("{\"m\": {\"new_counter\": 1}}");
  CompareReport report = CompareTrajectories(base, cand, CompareOptions{});
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.regressions[0].key, "m.old_counter");
  EXPECT_NE(report.regressions[0].reason.find("missing"), std::string::npos);
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("m.new_counter"), std::string::npos);

  CompareOptions lenient;
  lenient.fail_on_missing = false;
  EXPECT_TRUE(CompareTrajectories(base, cand, lenient).ok);
}

TEST(TrajectoryCompareTest, IndexAndStringsDoNotParticipate) {
  JsonValue base =
      ParseOrDie("{\"index\": 1, \"git_sha\": \"aaa\", \"threads\": 4}");
  JsonValue cand =
      ParseOrDie("{\"index\": 2, \"git_sha\": \"bbb\", \"threads\": 4}");
  EXPECT_TRUE(CompareTrajectories(base, cand, CompareOptions{}).ok);
}

TEST(TrajectorySummarizeTest, SidecarCollapsesToTrajectoryShape) {
  // A miniature schema-v2 sidecar as bench_util.h writes it.
  JsonValue sidecar = ParseOrDie(
      "{\"schema_version\": 2, \"bench\": \"demo\", \"wall_time_s\": 1.5, "
      "\"peak_rss_kb\": 2048, \"metrics\": {"
      "\"counters\": {\"fieldswap.serve.requests\": 96}, "
      "\"gauges\": {\"fieldswap.par.bench.threads\": 4}, "
      "\"histograms\": {\"fieldswap.serve.latency_ms\": "
      "{\"count\": 3, \"sum\": 8, \"min\": 1, \"max\": 5, "
      "\"bounds\": [1, 2], \"buckets\": [1, 1, 1]}}}, "
      "\"profile\": {\"schema_version\": 1, \"total_spans\": 7, "
      "\"dropped_spans\": 0, \"spans\": {\"serve.batch\": "
      "{\"count\": 6, \"total_us\": 900, \"self_us\": 100}}}}");
  std::optional<JsonValue> summary = obs::SummarizeSidecar(sidecar);
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(summary->Find("wall_time_s")->number_value(), 1.5);
  EXPECT_EQ(summary->Find("peak_rss_kb")->number_value(), 2048.0);
  EXPECT_EQ(summary->Find("counters")
                ->Find("fieldswap.serve.requests")
                ->number_value(),
            96.0);
  const JsonValue* hist =
      summary->Find("histograms")->Find("fieldswap.serve.latency_ms");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->number_value(), 3.0);
  // p99 re-derived from the exported bounds+buckets lands in the overflow
  // bucket -> observed max.
  EXPECT_EQ(hist->Find("p99")->number_value(), 5.0);
  const JsonValue* span =
      summary->Find("profile")->Find("spans")->Find("serve.batch");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->Find("count")->number_value(), 6.0);
  // Raw bounds/buckets arrays do not survive into the trajectory file.
  EXPECT_EQ(hist->Find("bounds"), nullptr);

  // Malformed sidecars are rejected, not half-read.
  EXPECT_FALSE(obs::SummarizeSidecar(ParseOrDie("{\"bench\": \"x\"}"))
                   .has_value());
}

}  // namespace
}  // namespace fieldswap
