#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <numeric>

#include "nn/autodiff.h"
#include "nn/layers.h"
#include "nn/matrix.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "nn/sparsemax.h"
#include "util/rng.h"

namespace fieldswap {
namespace {

// ---- Matrix ---------------------------------------------------------------

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6u);
  m.At(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(m.At(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(m.At(0, 0), 0.0f);
}

TEST(MatrixTest, FromValuesRowMajor) {
  Matrix m = Matrix::FromValues(2, 2, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(m.At(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(m.At(1, 0), 3.0f);
}

TEST(MatrixTest, InPlaceArithmetic) {
  Matrix a = Matrix::FromValues(1, 3, {1, 2, 3});
  Matrix b = Matrix::FromValues(1, 3, {10, 20, 30});
  a.AddInPlace(b);
  EXPECT_FLOAT_EQ(a.At(0, 2), 33.0f);
  a.AxpyInPlace(-0.5f, b);
  EXPECT_FLOAT_EQ(a.At(0, 0), 6.0f);
  a.ScaleInPlace(2.0f);
  EXPECT_FLOAT_EQ(a.At(0, 1), 24.0f);
}

TEST(MatrixTest, Norm) {
  Matrix m = Matrix::FromValues(1, 2, {3, 4});
  EXPECT_FLOAT_EQ(m.Norm(), 5.0f);
}

TEST(MatrixTest, MatMulKnownResult) {
  Matrix a = Matrix::FromValues(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b = Matrix::FromValues(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix out(2, 2);
  MatMulInto(a, b, out);
  // [1 2 3; 4 5 6] * [7 8; 9 10; 11 12] = [58 64; 139 154]
  EXPECT_FLOAT_EQ(out.At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(out.At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(out.At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(out.At(1, 1), 154.0f);
}

TEST(MatrixTest, MatMulIntoOverwritesAndAccumAdds) {
  Matrix a = Matrix::FromValues(1, 2, {1, 2});
  Matrix b = Matrix::FromValues(2, 1, {3, 4});
  Matrix out = Matrix::Full(1, 1, 100.0f);
  MatMulInto(a, b, out);
  EXPECT_FLOAT_EQ(out.At(0, 0), 11.0f);  // stale contents discarded
  MatMulAccumInto(a, b, out);
  EXPECT_FLOAT_EQ(out.At(0, 0), 22.0f);  // accumulates on request
}

TEST(MatrixTest, MatMulTransVariantsAgree) {
  Rng rng(5);
  Matrix a = Matrix::Gaussian(4, 3, 1.0f, rng);
  Matrix b = Matrix::Gaussian(4, 5, 1.0f, rng);
  // a^T * b via MatMulTransAAccumInto vs explicit transpose + MatMulInto.
  Matrix out1(3, 5);
  MatMulTransAAccumInto(a, b, out1);
  Matrix at(3, 4);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 3; ++c) at.At(c, r) = a.At(r, c);
  }
  Matrix out2(3, 5);
  MatMulInto(at, b, out2);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 5; ++c) {
      EXPECT_NEAR(out1.At(r, c), out2.At(r, c), 1e-4);
    }
  }
}

TEST(MatrixTest, XavierWithinLimit) {
  Rng rng(9);
  Matrix m = Matrix::Xavier(10, 20, rng);
  float limit = std::sqrt(6.0f / 30.0f);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::fabs(m.values()[i]), limit);
  }
}

// ---- Sparsemax ------------------------------------------------------------

TEST(SparsemaxTest, SumsToOne) {
  std::vector<double> p = Sparsemax({0.1, 0.5, -0.3, 0.2});
  double sum = std::accumulate(p.begin(), p.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(SparsemaxTest, NonNegative) {
  std::vector<double> p = Sparsemax({-5.0, 0.0, 5.0});
  for (double v : p) EXPECT_GE(v, 0.0);
}

TEST(SparsemaxTest, DominantEntryGetsEverything) {
  std::vector<double> p = Sparsemax({10.0, 0.0, 0.0});
  EXPECT_NEAR(p[0], 1.0, 1e-9);
  EXPECT_NEAR(p[1], 0.0, 1e-9);
}

TEST(SparsemaxTest, UniformInputYieldsUniformOutput) {
  std::vector<double> p = Sparsemax({0.0, 0.0, 0.0, 0.0});
  for (double v : p) EXPECT_NEAR(v, 0.25, 1e-9);
}

TEST(SparsemaxTest, KnownTwoElementCase) {
  // sparsemax([0.6, 0.4]) = [(0.6-0.4+1)/2, ...] = [0.6, 0.4].
  std::vector<double> p = Sparsemax({0.6, 0.4});
  EXPECT_NEAR(p[0], 0.6, 1e-9);
  EXPECT_NEAR(p[1], 0.4, 1e-9);
}

TEST(SparsemaxTest, ScaleIncreasesSparsity) {
  std::vector<double> z{0.9, 0.7, 0.5, 0.3, 0.1};
  auto nonzeros = [](const std::vector<double>& p) {
    int count = 0;
    for (double v : p) {
      if (v > 0) ++count;
    }
    return count;
  };
  EXPECT_GE(nonzeros(Sparsemax(z, 1.0)), nonzeros(Sparsemax(z, 10.0)));
  EXPECT_EQ(nonzeros(Sparsemax(z, 100.0)), 1);
}

TEST(SparsemaxTest, EmptyInput) { EXPECT_TRUE(Sparsemax({}).empty()); }

TEST(SparsemaxTest, InvariantToConstantShift) {
  std::vector<double> a = Sparsemax({0.5, 0.2, -0.1});
  std::vector<double> b = Sparsemax({10.5, 10.2, 9.9});
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
}

/// Property sweep: output is always on the simplex for random inputs.
class SparsemaxPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SparsemaxPropertyTest, AlwaysOnSimplex) {
  Rng rng(GetParam());
  size_t n = 1 + rng.Index(12);
  std::vector<double> z(n);
  for (double& v : z) v = rng.Uniform(-3, 3);
  std::vector<double> p = Sparsemax(z, rng.Uniform(0.5, 20.0));
  double sum = 0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomVectors, SparsemaxPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

// ---- Optimizer ------------------------------------------------------------

TEST(AdamTest, MinimizesQuadratic) {
  // Minimize ||x - target||^2 over x.
  Var x = Parameter(Matrix::FromValues(1, 3, {5, -4, 2}));
  Matrix target = Matrix::FromValues(1, 3, {1, 2, 3});
  AdamOptimizer::Options options;
  options.learning_rate = 0.05f;
  AdamOptimizer optimizer({{"x", x}}, options);
  for (int step = 0; step < 500; ++step) {
    Var diff = Sub(x, Constant(target));
    Var loss = MeanAll(Mul(diff, diff));
    Backward(loss);
    optimizer.Step();
  }
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(x->value.At(0, c), target.At(0, c), 0.05);
  }
}

TEST(AdamTest, StepZeroesGradients) {
  Var x = Parameter(Matrix::FromValues(1, 1, {1}));
  AdamOptimizer optimizer({{"x", x}});
  Var loss = Mul(x, x);
  Backward(loss);
  EXPECT_NE(x->grad.At(0, 0), 0.0f);
  optimizer.Step();
  EXPECT_EQ(x->grad.At(0, 0), 0.0f);
}

TEST(AdamTest, GradClipBoundsUpdate) {
  Var x = Parameter(Matrix::FromValues(1, 1, {0}));
  AdamOptimizer::Options options;
  options.grad_clip_norm = 1.0f;
  options.learning_rate = 1.0f;
  AdamOptimizer optimizer({{"x", x}}, options);
  x->EnsureGrad();
  x->grad.At(0, 0) = 1000.0f;
  optimizer.Step();
  // Adam's first step moves by ~lr regardless, but the clipped gradient
  // must not explode the moments.
  EXPECT_LT(std::fabs(x->value.At(0, 0)), 2.0f);
}

// Clipping is on the *global* norm: a two-tensor gradient of norms 3 and 4
// (global norm 5) clipped to 1 scales both tensors by 1/5 jointly —
// per-tensor clipping would have scaled them by 1/3 and 1/4 instead.
TEST(ClipGlobalGradNormTest, TwoTensorsScaledJointly) {
  Var a = Parameter(Matrix::FromValues(1, 1, {0}));
  Var b = Parameter(Matrix::FromValues(1, 2, {0, 0}));
  std::vector<NamedParam> params{{"a", a}, {"b", b}};
  a->EnsureGrad();
  b->EnsureGrad();
  a->grad.At(0, 0) = 3.0f;
  b->grad.At(0, 0) = 4.0f;

  EXPECT_NEAR(GlobalGradNorm(params), 5.0, 1e-6);
  double pre_clip = ClipGlobalGradNorm(params, 1.0);
  EXPECT_NEAR(pre_clip, 5.0, 1e-6);
  EXPECT_NEAR(a->grad.At(0, 0), 3.0f / 5.0f, 1e-6);
  EXPECT_NEAR(b->grad.At(0, 0), 4.0f / 5.0f, 1e-6);
  EXPECT_NEAR(GlobalGradNorm(params), 1.0, 1e-6);
}

TEST(ClipGlobalGradNormTest, UnderLimitIsUntouched) {
  Var a = Parameter(Matrix::FromValues(1, 1, {0}));
  std::vector<NamedParam> params{{"a", a}};
  a->EnsureGrad();
  a->grad.At(0, 0) = 0.5f;
  ClipGlobalGradNorm(params, 1.0);
  EXPECT_FLOAT_EQ(a->grad.At(0, 0), 0.5f);
  // 0 disables clipping entirely.
  a->grad.At(0, 0) = 100.0f;
  ClipGlobalGradNorm(params, 0.0);
  EXPECT_FLOAT_EQ(a->grad.At(0, 0), 100.0f);
}

TEST(SnapshotTest, RestoreRoundTrip) {
  Var x = Parameter(Matrix::FromValues(1, 2, {1, 2}));
  std::vector<NamedParam> params{{"x", x}};
  std::vector<Matrix> snapshot = SnapshotParams(params);
  x->value.At(0, 0) = 99;
  RestoreParams(params, snapshot);
  EXPECT_FLOAT_EQ(x->value.At(0, 0), 1.0f);
}

// ---- Layers ---------------------------------------------------------------

TEST(LayersTest, LinearShapes) {
  Rng rng(1);
  Linear layer(4, 7, rng, "l");
  Var x = Constant(Matrix::Gaussian(3, 4, 1.0f, rng));
  Var y = layer.Apply(x);
  EXPECT_EQ(y->value.rows(), 3);
  EXPECT_EQ(y->value.cols(), 7);
}

TEST(LayersTest, EmbeddingLookupShapes) {
  Rng rng(2);
  Embedding emb(10, 5, rng, "e");
  Var out = emb.Lookup({1, 3, 3});
  EXPECT_EQ(out->value.rows(), 3);
  EXPECT_EQ(out->value.cols(), 5);
  // Duplicate ids produce identical rows.
  for (int c = 0; c < 5; ++c) {
    EXPECT_FLOAT_EQ(out->value.At(1, c), out->value.At(2, c));
  }
}

TEST(LayersTest, LayerNormNormalizesRows) {
  LayerNormLayer ln(8, "ln");
  Rng rng(3);
  Var x = Constant(Matrix::Gaussian(4, 8, 3.0f, rng));
  Var y = ln.Apply(x);
  for (int r = 0; r < 4; ++r) {
    double mean = 0, var = 0;
    for (int c = 0; c < 8; ++c) mean += y->value.At(r, c);
    mean /= 8;
    for (int c = 0; c < 8; ++c) {
      double d = y->value.At(r, c) - mean;
      var += d * d;
    }
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayersTest, TransformerBlockPreservesShape) {
  Rng rng(4);
  TransformerBlock block(16, rng, "b");
  Var x = Constant(Matrix::Gaussian(5, 16, 1.0f, rng));
  Var y = block.Apply(x, FullAttentionNeighbors(5));
  EXPECT_EQ(y->value.rows(), 5);
  EXPECT_EQ(y->value.cols(), 16);
}

TEST(LayersTest, ParamCollection) {
  Rng rng(5);
  TransformerBlock block(8, rng, "b");
  std::vector<NamedParam> params;
  block.CollectParams(params);
  EXPECT_EQ(params.size(), 16u);  // 2 LN x2 + 6 linears x2
  for (const NamedParam& np : params) {
    EXPECT_TRUE(np.param->requires_grad);
    EXPECT_FALSE(np.name.empty());
  }
}

// ---- Ops (forward behaviour) ----------------------------------------------

TEST(OpsTest, RowSoftmaxRowsSumToOne) {
  Matrix logits = Matrix::FromValues(2, 3, {1, 2, 3, -1, 0, 1});
  Matrix probs = RowSoftmax(logits);
  for (int r = 0; r < 2; ++r) {
    double sum = 0;
    for (int c = 0; c < 3; ++c) sum += probs.At(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
  EXPECT_GT(probs.At(0, 2), probs.At(0, 0));
}

TEST(OpsTest, NeighborAttentionSelfOnlyIsIdentityOnV) {
  Rng rng(6);
  Matrix v = Matrix::Gaussian(3, 4, 1.0f, rng);
  Var q = Constant(Matrix::Gaussian(3, 4, 1.0f, rng));
  Var k = Constant(Matrix::Gaussian(3, 4, 1.0f, rng));
  Var vv = Constant(v);
  std::vector<std::vector<int>> self_only{{0}, {1}, {2}};
  Var out = NeighborAttention(q, k, vv, self_only);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_NEAR(out->value.At(r, c), v.At(r, c), 1e-5);
    }
  }
}

TEST(OpsTest, SoftmaxCrossEntropyPerfectPredictionNearZero) {
  Matrix logits = Matrix::FromValues(2, 2, {20, 0, 0, 20});
  Var loss = SoftmaxCrossEntropy(Constant(logits), {0, 1});
  EXPECT_NEAR(loss->value.At(0, 0), 0.0, 1e-6);
}

TEST(OpsTest, SoftmaxCrossEntropyUniformIsLogC) {
  Matrix logits = Matrix::Zeros(1, 4);
  Var loss = SoftmaxCrossEntropy(Constant(logits), {2});
  EXPECT_NEAR(loss->value.At(0, 0), std::log(4.0), 1e-5);
}

TEST(OpsTest, ClassWeightsRescaleLoss) {
  Matrix logits = Matrix::Zeros(2, 2);
  Var unweighted = SoftmaxCrossEntropy(Constant(logits), {0, 1});
  Var weighted =
      SoftmaxCrossEntropy(Constant(logits), {0, 1}, {0.5f, 0.5f});
  // Equal weights cancel in the weighted mean.
  EXPECT_NEAR(unweighted->value.At(0, 0), weighted->value.At(0, 0), 1e-6);
}

TEST(OpsTest, BceWithLogitsKnownValues) {
  Matrix logits = Matrix::FromValues(2, 1, {0, 0});
  Var loss = BinaryCrossEntropyWithLogits(Constant(logits), {1.0f, 0.0f});
  EXPECT_NEAR(loss->value.At(0, 0), std::log(2.0), 1e-6);
}

TEST(OpsTest, MaxPoolRowsPicksColumnMaxima) {
  Matrix m = Matrix::FromValues(3, 2, {1, 9, 5, 2, 3, 4});
  Var out = MaxPoolRows(Constant(m));
  EXPECT_FLOAT_EQ(out->value.At(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out->value.At(0, 1), 9.0f);
}

// ---- Serialization --------------------------------------------------------

TEST(SerializeTest, RoundTrip) {
  Rng rng(7);
  Var a = Parameter(Matrix::Gaussian(3, 4, 1.0f, rng));
  Var b = Parameter(Matrix::Gaussian(1, 2, 1.0f, rng));
  std::vector<NamedParam> params{{"a", a}, {"b", b}};
  std::string path = ::testing::TempDir() + "/ckpt_roundtrip.bin";
  ASSERT_TRUE(SaveCheckpoint(path, params));

  Var a2 = Parameter(Matrix::Zeros(3, 4));
  Var b2 = Parameter(Matrix::Zeros(1, 2));
  std::vector<NamedParam> params2{{"a", a2}, {"b", b2}};
  ASSERT_TRUE(LoadCheckpoint(path, params2));
  EXPECT_EQ(a->value, a2->value);
  EXPECT_EQ(b->value, b2->value);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  Var a = Parameter(Matrix::Zeros(1, 1));
  EXPECT_FALSE(LoadCheckpoint("/nonexistent/path/x.bin", {{"a", a}}));
}

TEST(SerializeTest, ShapeMismatchFails) {
  Var a = Parameter(Matrix::Zeros(2, 2));
  std::string path = ::testing::TempDir() + "/ckpt_mismatch.bin";
  ASSERT_TRUE(SaveCheckpoint(path, {{"a", a}}));
  Var wrong = Parameter(Matrix::Zeros(3, 3));
  EXPECT_FALSE(LoadCheckpoint(path, {{"a", wrong}}));
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingParamNameFails) {
  Var a = Parameter(Matrix::Zeros(1, 1));
  std::string path = ::testing::TempDir() + "/ckpt_name.bin";
  ASSERT_TRUE(SaveCheckpoint(path, {{"a", a}}));
  Var b = Parameter(Matrix::Zeros(1, 1));
  EXPECT_FALSE(LoadCheckpoint(path, {{"b", b}}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fieldswap
