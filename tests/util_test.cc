#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "util/argparse.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace fieldswap {
namespace {

// ---- Rng ------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

// Pins the v2 (SplitMix64-seeded) streams: regenerating these values means
// every seeded corpus in the repo changes, which requires an explicit
// version-bump note in CHANGES.md (see the stream-version comment in
// util/rng.h).
TEST(RngTest, GoldenValuesPinStreamVersion2) {
  // Seed 0 with one advance burned continues the canonical SplitMix64
  // seed-0 sequence from its second value on.
  Rng zero(0);
  EXPECT_EQ(zero.Next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(zero.Next(), 0x06c45d188009454fULL);
  EXPECT_EQ(zero.Next(), 0xf88bb8a8724c81ecULL);

  Rng one(1);
  EXPECT_EQ(one.Next(), 0xbeeb8da1658eec67ULL);
  EXPECT_EQ(one.Next(), 0xf893a2eefb32555eULL);

  Rng forty_two(42);
  EXPECT_EQ(forty_two.Next(), 0x28efe333b266f103ULL);
  EXPECT_EQ(forty_two.Next(), 0x47526757130f9f52ULL);
}

// The v1 construction (state = seed ^ constant) aliased seed families:
// Rng(kGolden) ran the canonical seed-0 SplitMix64 sequence and any two
// seeds related by the XOR constant produced each other's streams. The v2
// seeding keeps seed 0 and the golden constant itself on distinct streams.
TEST(RngTest, SeedZeroAndGoldenConstantDoNotAlias) {
  constexpr uint64_t kGoldenConstant = 0x9e3779b97f4a7c15ULL;
  Rng zero(0);
  Rng golden(kGoldenConstant);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (zero.Next() == golden.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u) << "all values in [3,7] should appear";
}

TEST(RngTest, UniformIntSingleValue) {
  Rng rng(3);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleMoreThanPopulationReturnsAll) {
  Rng rng(29);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 50);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, SplitProducesIndependentStreams) {
  Rng parent(31);
  Rng child_a = parent.Split(1);
  Rng child_b = parent.Split(1);
  // Splits from an advanced parent differ even with the same salt.
  EXPECT_NE(child_a.Next(), child_b.Next());
}

TEST(RngTest, SplitByTagDeterministic) {
  Rng a(5), b(5);
  Rng child_a = a.Split("values");
  Rng child_b = b.Split("values");
  EXPECT_EQ(child_a.Next(), child_b.Next());
}

TEST(RngTest, ChoiceReturnsElement) {
  Rng rng(37);
  std::vector<std::string> items{"a", "b", "c"};
  for (int i = 0; i < 20; ++i) {
    const std::string& pick = rng.Choice(items);
    EXPECT_TRUE(std::find(items.begin(), items.end(), pick) != items.end());
  }
}

// ---- Hash -----------------------------------------------------------------

TEST(HashTest, Fnv1aKnownValue) {
  // FNV-1a of the empty string is the offset basis.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
}

TEST(HashTest, DifferentStringsDifferentHashes) {
  EXPECT_NE(Fnv1a64("Base Salary"), Fnv1a64("Base Salarz"));
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
}

TEST(HashTest, BucketWithinRange) {
  for (const char* s : {"Overtime", "$3,308.62", "Pay Date", ""}) {
    EXPECT_LT(HashBucket(s, 128), 128u);
  }
}

// ---- Strings --------------------------------------------------------------

TEST(StringsTest, SplitStringDropsEmpty) {
  EXPECT_EQ(SplitString("a,,b,c,", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringsTest, SplitWhitespaceHandlesRuns) {
  EXPECT_EQ(SplitWhitespace("  Base   Salary\t$3,308.62\n"),
            (std::vector<std::string>{"Base", "Salary", "$3,308.62"}));
}

TEST(StringsTest, SplitWhitespaceEmpty) {
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(StringsTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"Amount", "Due"}, " "), "Amount Due");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"x"}, ","), "x");
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  hi  "), "hi");
  EXPECT_EQ(TrimWhitespace("hi"), "hi");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(StringsTest, TrimPunctuationStripsBothEnds) {
  EXPECT_EQ(TrimPunctuation("Due:"), "Due");
  EXPECT_EQ(TrimPunctuation("(Total)"), "Total");
  EXPECT_EQ(TrimPunctuation("--"), "");
  EXPECT_EQ(TrimPunctuation("St,"), "St");
}

TEST(StringsTest, TrimPunctuationKeepsInnerPunctuation) {
  EXPECT_EQ(TrimPunctuation("O'Brien"), "O'Brien");
  EXPECT_EQ(TrimPunctuation("3,308.62"), "3,308.62");
}

TEST(StringsTest, ToLowerAsciiOnly) {
  EXPECT_EQ(ToLower("Base SALARY 42"), "base salary 42");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Overtime", "OVERTIME"));
  EXPECT_FALSE(EqualsIgnoreCase("Overtime", "Overtim"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("Pay Date", "Pay"));
  EXPECT_FALSE(StartsWith("Pay", "Pay Date"));
  EXPECT_TRUE(EndsWith("Pay Date", "Date"));
  EXPECT_FALSE(EndsWith("Date", "Pay Date"));
}

TEST(StringsTest, IsAllDigits) {
  EXPECT_TRUE(IsAllDigits("0123"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_FALSE(IsAllDigits("12a"));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
}

TEST(StringsTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(38081), "38,081");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

// ---- Stats ----------------------------------------------------------------

TEST(StatsTest, MeanAndStdDev) {
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_NEAR(StdDev(v), 2.138, 1e-3);
}

TEST(StatsTest, MeanOfEmptyIsZero) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(StdDev({}), 0.0);
  EXPECT_EQ(StdDev({3.0}), 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
}

TEST(StatsTest, BoxStatsNoOutliers) {
  std::vector<double> v{1, 2, 3, 4, 5};
  BoxStats stats = ComputeBoxStats(v);
  EXPECT_DOUBLE_EQ(stats.median, 3.0);
  EXPECT_DOUBLE_EQ(stats.q1, 2.0);
  EXPECT_DOUBLE_EQ(stats.q3, 4.0);
  EXPECT_DOUBLE_EQ(stats.whisker_lo, 1.0);
  EXPECT_DOUBLE_EQ(stats.whisker_hi, 5.0);
  EXPECT_TRUE(stats.outliers.empty());
}

TEST(StatsTest, BoxStatsDetectsOutlier) {
  std::vector<double> v{1, 2, 3, 4, 5, 100};
  BoxStats stats = ComputeBoxStats(v);
  ASSERT_EQ(stats.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(stats.outliers[0], 100.0);
  EXPECT_LE(stats.whisker_hi, 5.0);
}

TEST(StatsTest, BoxStatsSingleValue) {
  BoxStats stats = ComputeBoxStats({7.0});
  EXPECT_DOUBLE_EQ(stats.median, 7.0);
  EXPECT_DOUBLE_EQ(stats.whisker_lo, 7.0);
  EXPECT_DOUBLE_EQ(stats.whisker_hi, 7.0);
  EXPECT_TRUE(stats.outliers.empty());
}

// ---- TablePrinter ---------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"Field", "F1"});
  table.AddRow({"current.salary", "79.3"});
  table.AddRow({"net_pay", "96.8"});
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| Field"), std::string::npos);
  EXPECT_NE(out.find("current.salary"), std::string::npos);
  // Header rule and borders exist.
  EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(ArgParserTest, ParsesTypedFlagsInBothSyntaxes) {
  util::ArgParser args("prog", "test program");
  int steps = 0;
  double rate = 0;
  std::string domain;
  bool verbose = false;
  args.AddInt("steps", 10, "step count", &steps);
  args.AddDouble("rate", 0.5, "learning rate", &rate);
  args.AddString("domain", "invoices", "domain name", &domain);
  args.AddBool("verbose", "chatty output", &verbose);
  EXPECT_EQ(steps, 10);  // defaults land at registration time
  EXPECT_EQ(domain, "invoices");

  const char* argv[] = {"prog", "--steps", "25", "--rate=0.125",
                        "--domain", "paystubs", "--verbose"};
  ASSERT_TRUE(args.Parse(7, const_cast<char**>(argv)));
  EXPECT_EQ(steps, 25);
  EXPECT_EQ(rate, 0.125);
  EXPECT_EQ(domain, "paystubs");
  EXPECT_TRUE(verbose);
}

TEST(ArgParserTest, KeepsDefaultsWhenFlagsAbsent) {
  util::ArgParser args("prog", "test program");
  int steps = 0;
  args.AddInt("steps", 42, "step count", &steps);
  const char* argv[] = {"prog"};
  ASSERT_TRUE(args.Parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(steps, 42);
}

TEST(ArgParserTest, RejectsUnknownFlagsAndBadValues) {
  util::ArgParser args("prog", "test program");
  int steps = 0;
  args.AddInt("steps", 10, "step count", &steps);
  const char* unknown[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(args.Parse(3, const_cast<char**>(unknown)));
  EXPECT_FALSE(args.help_requested());

  util::ArgParser args2("prog", "test program");
  args2.AddInt("steps", 10, "step count", &steps);
  const char* banana[] = {"prog", "--steps", "banana"};
  EXPECT_FALSE(args2.Parse(3, const_cast<char**>(banana)));
}

TEST(ArgParserTest, HelpPrintsUsageAndStopsParsing) {
  util::ArgParser args("prog", "test program");
  int steps = 0;
  args.AddInt("steps", 10, "step count", &steps);
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(args.Parse(2, const_cast<char**>(argv)));
  EXPECT_TRUE(args.help_requested());
  std::string usage = args.Usage();
  EXPECT_NE(usage.find("--steps"), std::string::npos);
  EXPECT_NE(usage.find("step count"), std::string::npos);
}

TEST(ArgParserTest, FillsPositionalsInDeclarationOrder) {
  util::ArgParser args("prog", "test program");
  std::string first, second;
  args.AddPositional("first", "alpha", "first positional", &first);
  args.AddPositional("second", "beta", "second positional", &second);
  const char* argv[] = {"prog", "one"};
  ASSERT_TRUE(args.Parse(2, const_cast<char**>(argv)));
  EXPECT_EQ(first, "one");
  EXPECT_EQ(second, "beta");  // missing optional keeps its default
}

TEST(TablePrinterTest, HandlesRaggedRows) {
  TablePrinter table({"a"});
  table.AddRow({"1", "2", "3"});
  table.AddRow({});
  std::ostringstream os;
  table.Print(os);
  EXPECT_FALSE(os.str().empty());
  EXPECT_EQ(table.num_rows(), 2u);
}

}  // namespace
}  // namespace fieldswap
