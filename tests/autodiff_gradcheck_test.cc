#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "nn/autodiff.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "nn/sparsemax.h"
#include "util/rng.h"

namespace fieldswap {
namespace {

/// Numerical gradient check: builds loss = f(param) twice per entry with
/// central differences and compares against the reverse-mode gradient.
void CheckGradient(Var param, const std::function<Var(const Var&)>& f,
                   double tolerance = 2e-2) {
  Var loss = f(param);
  ASSERT_EQ(loss->value.rows(), 1);
  ASSERT_EQ(loss->value.cols(), 1);
  param->EnsureGrad();
  param->grad.Zero();
  Backward(loss);
  Matrix analytic = param->grad;

  const float eps = 1e-2f;
  for (int r = 0; r < param->value.rows(); ++r) {
    for (int c = 0; c < param->value.cols(); ++c) {
      float saved = param->value.At(r, c);
      param->value.At(r, c) = saved + eps;
      double up = f(param)->value.At(0, 0);
      param->value.At(r, c) = saved - eps;
      double down = f(param)->value.At(0, 0);
      param->value.At(r, c) = saved;
      double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(analytic.At(r, c), numeric,
                  tolerance * std::max(1.0, std::fabs(numeric)))
          << "entry (" << r << "," << c << ")";
    }
  }
}

Matrix RandomMatrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  return Matrix::Gaussian(rows, cols, 0.8f, seed % 2 == 0 ? rng : rng);
}

TEST(GradCheckTest, Add) {
  Var p = Parameter(RandomMatrix(2, 3, 1));
  Var other = Constant(RandomMatrix(2, 3, 2));
  CheckGradient(p, [&](const Var& x) { return MeanAll(Add(x, other)); });
}

TEST(GradCheckTest, AddRowBroadcast) {
  Var bias = Parameter(RandomMatrix(1, 4, 3));
  Var base = Constant(RandomMatrix(3, 4, 4));
  CheckGradient(bias, [&](const Var& b) {
    Var sum = AddRowBroadcast(base, b);
    return MeanAll(Mul(sum, sum));
  });
}

TEST(GradCheckTest, SubAndMul) {
  Var p = Parameter(RandomMatrix(2, 2, 5));
  Var other = Constant(RandomMatrix(2, 2, 6));
  CheckGradient(p, [&](const Var& x) {
    return MeanAll(Mul(Sub(x, other), Add(x, other)));
  });
}

TEST(GradCheckTest, Scale) {
  Var p = Parameter(RandomMatrix(2, 2, 7));
  CheckGradient(p, [&](const Var& x) { return MeanAll(Scale(x, -2.5f)); });
}

TEST(GradCheckTest, ReluAwayFromKink) {
  // Keep entries away from 0 where ReLU is non-differentiable.
  Var p = Parameter(Matrix::FromValues(1, 4, {1.0f, -1.0f, 2.0f, -0.5f}));
  CheckGradient(p, [&](const Var& x) { return MeanAll(Relu(x)); });
}

TEST(GradCheckTest, TanhAndSigmoid) {
  Var p = Parameter(RandomMatrix(2, 3, 8));
  CheckGradient(p, [&](const Var& x) { return MeanAll(Tanh(x)); });
  Var q = Parameter(RandomMatrix(2, 3, 9));
  CheckGradient(q, [&](const Var& x) { return MeanAll(Sigmoid(x)); });
}

TEST(GradCheckTest, MatMulLeft) {
  Var p = Parameter(RandomMatrix(2, 3, 10));
  Var other = Constant(RandomMatrix(3, 4, 11));
  CheckGradient(p, [&](const Var& x) {
    Var y = MatMul(x, other);
    return MeanAll(Mul(y, y));
  });
}

TEST(GradCheckTest, MatMulRight) {
  Var p = Parameter(RandomMatrix(3, 4, 12));
  Var other = Constant(RandomMatrix(2, 3, 13));
  CheckGradient(p, [&](const Var& x) {
    Var y = MatMul(other, x);
    return MeanAll(Mul(y, y));
  });
}

TEST(GradCheckTest, ConcatCols) {
  Var p = Parameter(RandomMatrix(2, 2, 14));
  Var other = Constant(RandomMatrix(2, 3, 15));
  CheckGradient(p, [&](const Var& x) {
    Var y = ConcatCols(x, other);
    return MeanAll(Mul(y, y));
  });
  // Gradient also flows through the right side.
  Var q = Parameter(RandomMatrix(2, 3, 16));
  Var left = Constant(RandomMatrix(2, 2, 17));
  CheckGradient(q, [&](const Var& x) {
    Var y = ConcatCols(left, x);
    return MeanAll(Mul(y, y));
  });
}

TEST(GradCheckTest, SliceRows) {
  Var p = Parameter(RandomMatrix(4, 3, 18));
  CheckGradient(p, [&](const Var& x) {
    Var y = SliceRows(x, 1, 2);
    return MeanAll(Mul(y, y));
  });
}

TEST(GradCheckTest, GatherRowsWithDuplicates) {
  Var table = Parameter(RandomMatrix(5, 3, 19));
  CheckGradient(table, [&](const Var& t) {
    Var y = GatherRows(t, {0, 2, 2, 4});
    return MeanAll(Mul(y, y));
  });
}

TEST(GradCheckTest, MaxPoolRows) {
  // Distinct values so the argmax is stable under the probe epsilon.
  Var p = Parameter(Matrix::FromValues(3, 2, {1, 9, 5, 2, 3, 4}));
  CheckGradient(p, [&](const Var& x) {
    Var y = MaxPoolRows(x);
    return MeanAll(Mul(y, y));
  });
}

TEST(GradCheckTest, MeanRows) {
  Var p = Parameter(RandomMatrix(3, 4, 20));
  CheckGradient(p, [&](const Var& x) {
    Var y = MeanRows(x);
    return MeanAll(Mul(y, y));
  });
}

TEST(GradCheckTest, LayerNorm) {
  Var p = Parameter(RandomMatrix(2, 6, 21));
  Var gain = Constant(Matrix::Full(1, 6, 1.3f));
  Var bias = Constant(Matrix::Full(1, 6, 0.2f));
  CheckGradient(
      p,
      [&](const Var& x) {
        Var y = LayerNorm(x, gain, bias);
        Var weights = Constant(RandomMatrix(2, 6, 22));
        return MeanAll(Mul(y, weights));
      },
      /*tolerance=*/5e-2);
}

TEST(GradCheckTest, LayerNormGainAndBias) {
  Var gain = Parameter(Matrix::Full(1, 4, 1.0f));
  Var bias = Parameter(Matrix::Full(1, 4, 0.0f));
  Var x = Constant(RandomMatrix(3, 4, 23));
  Var weights = Constant(RandomMatrix(3, 4, 24));
  CheckGradient(gain, [&](const Var& g) {
    return MeanAll(Mul(LayerNorm(x, g, bias), weights));
  });
  CheckGradient(bias, [&](const Var& b) {
    return MeanAll(Mul(LayerNorm(x, gain, b), weights));
  });
}

TEST(GradCheckTest, NeighborAttentionQ) {
  std::vector<std::vector<int>> neighbors{{0, 1}, {0, 1, 2}, {2}};
  Var q = Parameter(RandomMatrix(3, 4, 25));
  Var k = Constant(RandomMatrix(3, 4, 26));
  Var v = Constant(RandomMatrix(3, 4, 27));
  Var weights = Constant(RandomMatrix(3, 4, 28));
  CheckGradient(q, [&](const Var& x) {
    return MeanAll(Mul(NeighborAttention(x, k, v, neighbors), weights));
  });
}

TEST(GradCheckTest, NeighborAttentionK) {
  std::vector<std::vector<int>> neighbors{{0, 1, 2}, {1, 2}, {0, 2}};
  Var q = Constant(RandomMatrix(3, 4, 29));
  Var k = Parameter(RandomMatrix(3, 4, 30));
  Var v = Constant(RandomMatrix(3, 4, 31));
  Var weights = Constant(RandomMatrix(3, 4, 32));
  CheckGradient(k, [&](const Var& x) {
    return MeanAll(Mul(NeighborAttention(q, x, v, neighbors), weights));
  });
}

TEST(GradCheckTest, NeighborAttentionV) {
  std::vector<std::vector<int>> neighbors{{0, 1, 2}, {0}, {1, 2}};
  Var q = Constant(RandomMatrix(3, 4, 33));
  Var k = Constant(RandomMatrix(3, 4, 34));
  Var v = Parameter(RandomMatrix(3, 4, 35));
  Var weights = Constant(RandomMatrix(3, 4, 36));
  CheckGradient(v, [&](const Var& x) {
    return MeanAll(Mul(NeighborAttention(q, k, x, neighbors), weights));
  });
}

TEST(GradCheckTest, SoftmaxCrossEntropy) {
  Var logits = Parameter(RandomMatrix(3, 4, 37));
  CheckGradient(logits, [&](const Var& x) {
    return SoftmaxCrossEntropy(x, {1, 0, 3});
  });
}

TEST(GradCheckTest, SoftmaxCrossEntropyExtremeLogitsMatchesClampedForward) {
  // Row 0 puts ~exp(-80) on its true class: the forward clamps
  // p = max(p, 1e-12), so the loss is flat in every logit of that row and
  // the consistent backward is exactly zero there (ISSUE 7 bugfix — the
  // unclamped backward reported a huge gradient the forward never sees).
  // Row 1 is an ordinary row and must keep its usual gradient.
  Matrix extreme = Matrix::FromValues(
      2, 3, {40.0f, -40.0f, 0.0f, 0.5f, -0.2f, 0.1f});
  Var logits = Parameter(extreme);
  Var loss = SoftmaxCrossEntropy(logits, {1, 2});
  logits->EnsureGrad();
  logits->grad.Zero();
  Backward(loss);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(logits->grad.At(0, c), 0.0f) << "clamped row, col " << c;
  }
  EXPECT_NE(logits->grad.At(1, 2), 0.0f) << "ordinary row lost its gradient";

  // Central differences agree: the flat row contributes zero numerically
  // too, so analytic-vs-numeric holds across the clamp boundary.
  Var fresh = Parameter(extreme);
  CheckGradient(fresh, [&](const Var& x) {
    return SoftmaxCrossEntropy(x, {1, 2});
  });
}

TEST(GradCheckTest, SoftmaxCrossEntropyWithClassWeights) {
  Var logits = Parameter(RandomMatrix(3, 4, 38));
  CheckGradient(logits, [&](const Var& x) {
    return SoftmaxCrossEntropy(x, {1, 0, 3}, {0.2f, 1.0f, 1.0f, 2.0f});
  });
}

TEST(GradCheckTest, BinaryCrossEntropy) {
  Var logits = Parameter(RandomMatrix(4, 1, 39));
  CheckGradient(logits, [&](const Var& x) {
    return BinaryCrossEntropyWithLogits(x, {1.0f, 0.0f, 1.0f, 0.0f});
  });
}

TEST(GradCheckTest, CompositeGraphWithSharedSubexpression) {
  // y used twice: checks gradient accumulation through fan-out.
  Var p = Parameter(RandomMatrix(2, 2, 40));
  CheckGradient(p, [&](const Var& x) {
    Var y = Tanh(x);
    return MeanAll(Add(Mul(y, y), y));
  });
}

TEST(GradCheckTest, GradientPrunedForConstants) {
  Var c = Constant(RandomMatrix(2, 2, 41));
  Var p = Parameter(RandomMatrix(2, 2, 42));
  Var loss = MeanAll(Mul(p, c));
  Backward(loss);
  // Constants never allocate gradient storage via the backward pass.
  EXPECT_TRUE(c->grad.empty());
  EXPECT_FALSE(p->grad.empty());
}

// ---- Sparsemax boundary cases ---------------------------------------------
//
// Sparsemax is a simplex projection used outside the autodiff graph (token
// selection, Sec. II-A2), so these are exact-value checks of the piecewise
// boundaries rather than gradient probes.

double Sum(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x;
  return s;
}

TEST(SparsemaxBoundaryTest, AllEqualLogitsGiveUniform) {
  for (double value : {-3.0, 0.0, 42.0}) {
    std::vector<double> p = Sparsemax({value, value, value, value});
    ASSERT_EQ(p.size(), 4u);
    for (double pi : p) EXPECT_NEAR(pi, 0.25, 1e-12) << "logit " << value;
  }
}

TEST(SparsemaxBoundaryTest, TiedLeadersShareMassEqually) {
  // Two leaders tied far above the rest: exactly those two split the mass.
  std::vector<double> p = Sparsemax({2.0, 2.0, 0.0});
  ASSERT_EQ(p.size(), 3u);
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 0.5, 1e-12);
  EXPECT_NEAR(p[2], 0.0, 1e-12);
}

TEST(SparsemaxBoundaryTest, ProjectionSatisfiesKkt) {
  // Simplex-projection KKT conditions: p >= 0, sum(p) = 1, and for every
  // pair with p_i > 0 and p_j > 0, z_i - p_i == z_j - p_j (shared
  // threshold tau); supported entries dominate unsupported ones.
  Rng rng(2718);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> z;
    size_t n = 1 + rng.Index(6);
    for (size_t i = 0; i < n; ++i) z.push_back(rng.Gaussian(0, 3));
    std::vector<double> p = Sparsemax(z);
    ASSERT_EQ(p.size(), z.size());
    EXPECT_NEAR(Sum(p), 1.0, 1e-9);
    double tau = 0;
    bool have_tau = false;
    for (size_t i = 0; i < p.size(); ++i) {
      EXPECT_GE(p[i], 0.0);
      if (p[i] <= 0) continue;
      if (!have_tau) {
        tau = z[i] - p[i];
        have_tau = true;
      } else {
        EXPECT_NEAR(z[i] - p[i], tau, 1e-9);
      }
    }
    ASSERT_TRUE(have_tau);
    // Unsupported entries are at or below the threshold.
    for (size_t i = 0; i < p.size(); ++i) {
      if (p[i] <= 0) {
        EXPECT_LE(z[i], tau + 1e-9);
      }
    }
  }
}

TEST(SparsemaxBoundaryTest, ScaleSharpensSupport) {
  std::vector<double> z = {1.0, 0.6, 0.2, -0.4};
  auto support = [](const std::vector<double>& p) {
    int n = 0;
    for (double pi : p) n += pi > 0 ? 1 : 0;
    return n;
  };
  EXPECT_EQ(support(Sparsemax(z, 100.0)), 1);
  EXPECT_GE(support(Sparsemax(z, 0.01)), support(Sparsemax(z, 1.0)));
  // Scale 1 matches the plain overload.
  std::vector<double> a = Sparsemax(z);
  std::vector<double> b = Sparsemax(z, 1.0);
  for (size_t i = 0; i < z.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(SparsemaxBoundaryTest, SingleAndEmptyInputs) {
  std::vector<double> one = Sparsemax({-7.5});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_NEAR(one[0], 1.0, 1e-12);
  EXPECT_TRUE(Sparsemax({}).empty());
}

// ---- Global gradient-norm clipping ----------------------------------------

std::vector<NamedParam> TwoParams(Matrix ga, Matrix gb) {
  Var a = Parameter(Matrix::Full(ga.rows(), ga.cols(), 0.0f));
  Var b = Parameter(Matrix::Full(gb.rows(), gb.cols(), 0.0f));
  a->EnsureGrad();
  b->EnsureGrad();
  a->grad = std::move(ga);
  b->grad = std::move(gb);
  return {{"a", a}, {"b", b}};
}

TEST(GlobalGradClipTest, NormMatchesHandComputation) {
  // Grads (3, 4) and (12,): norm = sqrt(9 + 16 + 144) = 13.
  auto params = TwoParams(Matrix::FromValues(1, 2, {3.0f, 4.0f}),
                          Matrix::FromValues(1, 1, {12.0f}));
  EXPECT_NEAR(GlobalGradNorm(params), 13.0, 1e-6);
}

TEST(GlobalGradClipTest, JointScalePreservesDirection) {
  auto params = TwoParams(Matrix::FromValues(1, 2, {3.0f, 4.0f}),
                          Matrix::FromValues(1, 1, {12.0f}));
  double pre = ClipGlobalGradNorm(params, 6.5);
  EXPECT_NEAR(pre, 13.0, 1e-6);
  // All tensors share one scale factor (13 -> 6.5 is exactly 0.5).
  EXPECT_NEAR(params[0].param->grad.At(0, 0), 1.5, 1e-6);
  EXPECT_NEAR(params[0].param->grad.At(0, 1), 2.0, 1e-6);
  EXPECT_NEAR(params[1].param->grad.At(0, 0), 6.0, 1e-6);
  EXPECT_NEAR(GlobalGradNorm(params), 6.5, 1e-5);
}

TEST(GlobalGradClipTest, NoOpUnderTheLimitOrWhenDisabled) {
  auto params = TwoParams(Matrix::FromValues(1, 2, {3.0f, 4.0f}),
                          Matrix::FromValues(1, 1, {12.0f}));
  EXPECT_NEAR(ClipGlobalGradNorm(params, 100.0), 13.0, 1e-6);
  EXPECT_NEAR(params[1].param->grad.At(0, 0), 12.0, 1e-6);
  // max_norm <= 0 disables clipping entirely.
  EXPECT_NEAR(ClipGlobalGradNorm(params, 0.0), 13.0, 1e-6);
  EXPECT_NEAR(params[1].param->grad.At(0, 0), 12.0, 1e-6);
}

TEST(GlobalGradClipTest, UnreachedParamsCountAsZero) {
  // A parameter Backward never visited has an empty grad; the global norm
  // treats it as zero instead of crashing.
  Var reached = Parameter(Matrix::FromValues(1, 1, {5.0f}));
  reached->EnsureGrad();
  reached->grad = Matrix::FromValues(1, 1, {5.0f});
  Var unreached = Parameter(Matrix::FromValues(1, 1, {1.0f}));
  std::vector<NamedParam> params = {{"r", reached}, {"u", unreached}};
  EXPECT_NEAR(GlobalGradNorm(params), 5.0, 1e-6);
  double pre = ClipGlobalGradNorm(params, 2.5);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  EXPECT_NEAR(reached->grad.At(0, 0), 2.5, 1e-6);
}

}  // namespace
}  // namespace fieldswap
