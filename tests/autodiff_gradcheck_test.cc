#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/autodiff.h"
#include "nn/ops.h"
#include "util/rng.h"

namespace fieldswap {
namespace {

/// Numerical gradient check: builds loss = f(param) twice per entry with
/// central differences and compares against the reverse-mode gradient.
void CheckGradient(Var param, const std::function<Var(const Var&)>& f,
                   double tolerance = 2e-2) {
  Var loss = f(param);
  ASSERT_EQ(loss->value.rows(), 1);
  ASSERT_EQ(loss->value.cols(), 1);
  param->EnsureGrad();
  param->grad.Zero();
  Backward(loss);
  Matrix analytic = param->grad;

  const float eps = 1e-2f;
  for (int r = 0; r < param->value.rows(); ++r) {
    for (int c = 0; c < param->value.cols(); ++c) {
      float saved = param->value.At(r, c);
      param->value.At(r, c) = saved + eps;
      double up = f(param)->value.At(0, 0);
      param->value.At(r, c) = saved - eps;
      double down = f(param)->value.At(0, 0);
      param->value.At(r, c) = saved;
      double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(analytic.At(r, c), numeric,
                  tolerance * std::max(1.0, std::fabs(numeric)))
          << "entry (" << r << "," << c << ")";
    }
  }
}

Matrix RandomMatrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  return Matrix::Gaussian(rows, cols, 0.8f, seed % 2 == 0 ? rng : rng);
}

TEST(GradCheckTest, Add) {
  Var p = Parameter(RandomMatrix(2, 3, 1));
  Var other = Constant(RandomMatrix(2, 3, 2));
  CheckGradient(p, [&](const Var& x) { return MeanAll(Add(x, other)); });
}

TEST(GradCheckTest, AddRowBroadcast) {
  Var bias = Parameter(RandomMatrix(1, 4, 3));
  Var base = Constant(RandomMatrix(3, 4, 4));
  CheckGradient(bias, [&](const Var& b) {
    Var sum = AddRowBroadcast(base, b);
    return MeanAll(Mul(sum, sum));
  });
}

TEST(GradCheckTest, SubAndMul) {
  Var p = Parameter(RandomMatrix(2, 2, 5));
  Var other = Constant(RandomMatrix(2, 2, 6));
  CheckGradient(p, [&](const Var& x) {
    return MeanAll(Mul(Sub(x, other), Add(x, other)));
  });
}

TEST(GradCheckTest, Scale) {
  Var p = Parameter(RandomMatrix(2, 2, 7));
  CheckGradient(p, [&](const Var& x) { return MeanAll(Scale(x, -2.5f)); });
}

TEST(GradCheckTest, ReluAwayFromKink) {
  // Keep entries away from 0 where ReLU is non-differentiable.
  Var p = Parameter(Matrix::FromValues(1, 4, {1.0f, -1.0f, 2.0f, -0.5f}));
  CheckGradient(p, [&](const Var& x) { return MeanAll(Relu(x)); });
}

TEST(GradCheckTest, TanhAndSigmoid) {
  Var p = Parameter(RandomMatrix(2, 3, 8));
  CheckGradient(p, [&](const Var& x) { return MeanAll(Tanh(x)); });
  Var q = Parameter(RandomMatrix(2, 3, 9));
  CheckGradient(q, [&](const Var& x) { return MeanAll(Sigmoid(x)); });
}

TEST(GradCheckTest, MatMulLeft) {
  Var p = Parameter(RandomMatrix(2, 3, 10));
  Var other = Constant(RandomMatrix(3, 4, 11));
  CheckGradient(p, [&](const Var& x) {
    Var y = MatMul(x, other);
    return MeanAll(Mul(y, y));
  });
}

TEST(GradCheckTest, MatMulRight) {
  Var p = Parameter(RandomMatrix(3, 4, 12));
  Var other = Constant(RandomMatrix(2, 3, 13));
  CheckGradient(p, [&](const Var& x) {
    Var y = MatMul(other, x);
    return MeanAll(Mul(y, y));
  });
}

TEST(GradCheckTest, ConcatCols) {
  Var p = Parameter(RandomMatrix(2, 2, 14));
  Var other = Constant(RandomMatrix(2, 3, 15));
  CheckGradient(p, [&](const Var& x) {
    Var y = ConcatCols(x, other);
    return MeanAll(Mul(y, y));
  });
  // Gradient also flows through the right side.
  Var q = Parameter(RandomMatrix(2, 3, 16));
  Var left = Constant(RandomMatrix(2, 2, 17));
  CheckGradient(q, [&](const Var& x) {
    Var y = ConcatCols(left, x);
    return MeanAll(Mul(y, y));
  });
}

TEST(GradCheckTest, SliceRows) {
  Var p = Parameter(RandomMatrix(4, 3, 18));
  CheckGradient(p, [&](const Var& x) {
    Var y = SliceRows(x, 1, 2);
    return MeanAll(Mul(y, y));
  });
}

TEST(GradCheckTest, GatherRowsWithDuplicates) {
  Var table = Parameter(RandomMatrix(5, 3, 19));
  CheckGradient(table, [&](const Var& t) {
    Var y = GatherRows(t, {0, 2, 2, 4});
    return MeanAll(Mul(y, y));
  });
}

TEST(GradCheckTest, MaxPoolRows) {
  // Distinct values so the argmax is stable under the probe epsilon.
  Var p = Parameter(Matrix::FromValues(3, 2, {1, 9, 5, 2, 3, 4}));
  CheckGradient(p, [&](const Var& x) {
    Var y = MaxPoolRows(x);
    return MeanAll(Mul(y, y));
  });
}

TEST(GradCheckTest, MeanRows) {
  Var p = Parameter(RandomMatrix(3, 4, 20));
  CheckGradient(p, [&](const Var& x) {
    Var y = MeanRows(x);
    return MeanAll(Mul(y, y));
  });
}

TEST(GradCheckTest, LayerNorm) {
  Var p = Parameter(RandomMatrix(2, 6, 21));
  Var gain = Constant(Matrix::Full(1, 6, 1.3f));
  Var bias = Constant(Matrix::Full(1, 6, 0.2f));
  CheckGradient(
      p,
      [&](const Var& x) {
        Var y = LayerNorm(x, gain, bias);
        Var weights = Constant(RandomMatrix(2, 6, 22));
        return MeanAll(Mul(y, weights));
      },
      /*tolerance=*/5e-2);
}

TEST(GradCheckTest, LayerNormGainAndBias) {
  Var gain = Parameter(Matrix::Full(1, 4, 1.0f));
  Var bias = Parameter(Matrix::Full(1, 4, 0.0f));
  Var x = Constant(RandomMatrix(3, 4, 23));
  Var weights = Constant(RandomMatrix(3, 4, 24));
  CheckGradient(gain, [&](const Var& g) {
    return MeanAll(Mul(LayerNorm(x, g, bias), weights));
  });
  CheckGradient(bias, [&](const Var& b) {
    return MeanAll(Mul(LayerNorm(x, gain, b), weights));
  });
}

TEST(GradCheckTest, NeighborAttentionQ) {
  std::vector<std::vector<int>> neighbors{{0, 1}, {0, 1, 2}, {2}};
  Var q = Parameter(RandomMatrix(3, 4, 25));
  Var k = Constant(RandomMatrix(3, 4, 26));
  Var v = Constant(RandomMatrix(3, 4, 27));
  Var weights = Constant(RandomMatrix(3, 4, 28));
  CheckGradient(q, [&](const Var& x) {
    return MeanAll(Mul(NeighborAttention(x, k, v, neighbors), weights));
  });
}

TEST(GradCheckTest, NeighborAttentionK) {
  std::vector<std::vector<int>> neighbors{{0, 1, 2}, {1, 2}, {0, 2}};
  Var q = Constant(RandomMatrix(3, 4, 29));
  Var k = Parameter(RandomMatrix(3, 4, 30));
  Var v = Constant(RandomMatrix(3, 4, 31));
  Var weights = Constant(RandomMatrix(3, 4, 32));
  CheckGradient(k, [&](const Var& x) {
    return MeanAll(Mul(NeighborAttention(q, x, v, neighbors), weights));
  });
}

TEST(GradCheckTest, NeighborAttentionV) {
  std::vector<std::vector<int>> neighbors{{0, 1, 2}, {0}, {1, 2}};
  Var q = Constant(RandomMatrix(3, 4, 33));
  Var k = Constant(RandomMatrix(3, 4, 34));
  Var v = Parameter(RandomMatrix(3, 4, 35));
  Var weights = Constant(RandomMatrix(3, 4, 36));
  CheckGradient(v, [&](const Var& x) {
    return MeanAll(Mul(NeighborAttention(q, k, x, neighbors), weights));
  });
}

TEST(GradCheckTest, SoftmaxCrossEntropy) {
  Var logits = Parameter(RandomMatrix(3, 4, 37));
  CheckGradient(logits, [&](const Var& x) {
    return SoftmaxCrossEntropy(x, {1, 0, 3});
  });
}

TEST(GradCheckTest, SoftmaxCrossEntropyWithClassWeights) {
  Var logits = Parameter(RandomMatrix(3, 4, 38));
  CheckGradient(logits, [&](const Var& x) {
    return SoftmaxCrossEntropy(x, {1, 0, 3}, {0.2f, 1.0f, 1.0f, 2.0f});
  });
}

TEST(GradCheckTest, BinaryCrossEntropy) {
  Var logits = Parameter(RandomMatrix(4, 1, 39));
  CheckGradient(logits, [&](const Var& x) {
    return BinaryCrossEntropyWithLogits(x, {1.0f, 0.0f, 1.0f, 0.0f});
  });
}

TEST(GradCheckTest, CompositeGraphWithSharedSubexpression) {
  // y used twice: checks gradient accumulation through fan-out.
  Var p = Parameter(RandomMatrix(2, 2, 40));
  CheckGradient(p, [&](const Var& x) {
    Var y = Tanh(x);
    return MeanAll(Add(Mul(y, y), y));
  });
}

TEST(GradCheckTest, GradientPrunedForConstants) {
  Var c = Constant(RandomMatrix(2, 2, 41));
  Var p = Parameter(RandomMatrix(2, 2, 42));
  Var loss = MeanAll(Mul(p, c));
  Backward(loss);
  // Constants never allocate gradient storage via the backward pass.
  EXPECT_TRUE(c->grad.empty());
  EXPECT_FALSE(p->grad.empty());
}

}  // namespace
}  // namespace fieldswap
