#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "doc/bbox.h"
#include "doc/document.h"
#include "doc/schema.h"
#include "doc/serialize.h"
#include "ocr/line_detector.h"
#include "synth/domains.h"
#include "synth/generator.h"

namespace fieldswap {
namespace {

// ---- BBox -----------------------------------------------------------------

TEST(BBoxTest, Geometry) {
  BBox box{10, 20, 40, 30};
  EXPECT_DOUBLE_EQ(box.Width(), 30.0);
  EXPECT_DOUBLE_EQ(box.Height(), 10.0);
  EXPECT_DOUBLE_EQ(box.CenterX(), 25.0);
  EXPECT_DOUBLE_EQ(box.CenterY(), 25.0);
  EXPECT_DOUBLE_EQ(box.Area(), 300.0);
}

TEST(BBoxTest, ContainsAndIntersects) {
  BBox a{0, 0, 10, 10};
  BBox b{5, 5, 15, 15};
  BBox c{20, 20, 30, 30};
  EXPECT_TRUE(a.Contains(5, 5));
  EXPECT_FALSE(a.Contains(11, 5));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
}

TEST(BBoxTest, UnionCoversBoth) {
  BBox u = BBox{0, 0, 10, 10}.Union(BBox{5, -5, 20, 8});
  EXPECT_EQ(u, (BBox{0, -5, 20, 10}));
}

TEST(BBoxTest, VerticalOverlap) {
  BBox a{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(a.VerticalOverlap(BBox{50, 5, 60, 15}), 5.0);
  EXPECT_DOUBLE_EQ(a.VerticalOverlap(BBox{50, 20, 60, 30}), 0.0);
}

TEST(OffAxisDistanceTest, ZeroWhenAxisAligned) {
  // Same y: horizontally aligned -> 0, regardless of x distance.
  EXPECT_DOUBLE_EQ(OffAxisDistance(0, 5, 100, 5), 0.0);
  // Same x: vertically aligned -> 0.
  EXPECT_DOUBLE_EQ(OffAxisDistance(7, 0, 7, 300), 0.0);
}

TEST(OffAxisDistanceTest, GrowsWithDiagonalOffset) {
  EXPECT_DOUBLE_EQ(OffAxisDistance(0, 0, 3, 4), 12.0);
  EXPECT_LT(OffAxisDistance(0, 0, 1, 1), OffAxisDistance(0, 0, 10, 10));
}

TEST(OffAxisDistanceTest, Symmetric) {
  EXPECT_DOUBLE_EQ(OffAxisDistance(1, 2, 5, 9), OffAxisDistance(5, 9, 1, 2));
}

// ---- Schema ---------------------------------------------------------------

DomainSchema TestSchema() {
  return DomainSchema(
      "test", {FieldSpec{"total_due", FieldType::kMoney, 1.0},
               FieldSpec{"invoice_date", FieldType::kDate, 1.0},
               FieldSpec{"vendor", FieldType::kString, 0.5},
               FieldSpec{"tax", FieldType::kMoney, 0.8}});
}

TEST(SchemaTest, FieldTypeNamesRoundTrip) {
  for (FieldType type : kAllFieldTypes) {
    auto parsed = ParseFieldType(FieldTypeName(type));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, type);
  }
  EXPECT_FALSE(ParseFieldType("bogus").has_value());
}

TEST(SchemaTest, LookupAndIndex) {
  DomainSchema schema = TestSchema();
  EXPECT_EQ(schema.num_fields(), 4u);
  ASSERT_NE(schema.Find("tax"), nullptr);
  EXPECT_EQ(schema.Find("tax")->type, FieldType::kMoney);
  EXPECT_EQ(schema.Find("nope"), nullptr);
  EXPECT_TRUE(schema.Has("vendor"));
  EXPECT_EQ(schema.IndexOf("invoice_date"), 1);
  EXPECT_EQ(schema.IndexOf("nope"), -1);
}

TEST(SchemaTest, TypeOfUnknownDefaultsToString) {
  EXPECT_EQ(TestSchema().TypeOf("nope"), FieldType::kString);
}

TEST(SchemaTest, FieldsOfTypeAndCounts) {
  DomainSchema schema = TestSchema();
  EXPECT_EQ(schema.FieldsOfType(FieldType::kMoney),
            (std::vector<std::string>{"total_due", "tax"}));
  auto counts = schema.CountByType();
  EXPECT_EQ(counts[FieldType::kMoney], 2u);
  EXPECT_EQ(counts[FieldType::kDate], 1u);
  EXPECT_EQ(counts[FieldType::kAddress], 0u);
}

// ---- Document -------------------------------------------------------------

/// Two-line document:
///   "Amount Due: $42.00"      (y=0)
///   "Total 99"                 (y=20)
Document TwoLineDoc() {
  Document doc("d1", "test", 612, 792);
  doc.AddToken("Amount", BBox{0, 0, 40, 10});
  doc.AddToken("Due:", BBox{45, 0, 65, 10});
  doc.AddToken("$42.00", BBox{70, 0, 110, 10});
  doc.AddToken("Total", BBox{0, 20, 30, 30});
  doc.AddToken("99", BBox{35, 20, 45, 30});
  doc.set_lines({Line{{0, 1, 2}, BBox{0, 0, 110, 10}},
                 Line{{3, 4}, BBox{0, 20, 45, 30}}});
  doc.AddAnnotation(EntitySpan{"total_due", 2, 1});
  return doc;
}

TEST(DocumentTest, BasicAccessors) {
  Document doc = TwoLineDoc();
  EXPECT_EQ(doc.num_tokens(), 5);
  EXPECT_EQ(doc.token(2).text, "$42.00");
  EXPECT_EQ(doc.token(0).line, 0);
  EXPECT_EQ(doc.token(4).line, 1);
  EXPECT_EQ(doc.TextOfRange(0, 3), "Amount Due: $42.00");
  EXPECT_EQ(doc.TextOf(doc.annotations()[0]), "$42.00");
}

TEST(DocumentTest, BoxOfRangeUnions) {
  Document doc = TwoLineDoc();
  BBox box = doc.BoxOfRange(0, 3);
  EXPECT_DOUBLE_EQ(box.x_min, 0);
  EXPECT_DOUBLE_EQ(box.x_max, 110);
}

TEST(DocumentTest, AnnotationsForAndHasField) {
  Document doc = TwoLineDoc();
  EXPECT_TRUE(doc.HasField("total_due"));
  EXPECT_FALSE(doc.HasField("tax"));
  EXPECT_EQ(doc.AnnotationsFor("total_due").size(), 1u);
  EXPECT_TRUE(doc.AnnotationsFor("tax").empty());
}

TEST(DocumentTest, NeighborIndicesSortedByOffAxis) {
  Document doc = TwoLineDoc();
  // Anchor at the money token.
  std::vector<int> neighbors = doc.NeighborIndices(doc.token(2).box, 2, {2});
  ASSERT_EQ(neighbors.size(), 2u);
  // "Due:" and "Amount" share y with the anchor (off-axis 0); "Total"/"99"
  // are diagonal.
  EXPECT_TRUE(neighbors[0] == 0 || neighbors[0] == 1);
  EXPECT_TRUE(neighbors[1] == 0 || neighbors[1] == 1);
}

TEST(DocumentTest, NeighborIndicesExcludes) {
  Document doc = TwoLineDoc();
  std::vector<int> neighbors =
      doc.NeighborIndices(doc.token(2).box, 5, {0, 1, 2});
  EXPECT_EQ(neighbors.size(), 2u);
  for (int n : neighbors) EXPECT_GE(n, 3);
}

TEST(DocumentTest, FindPhraseMatchesCaseInsensitive) {
  Document doc = TwoLineDoc();
  auto matches = doc.FindPhrase({"amount", "due"});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].first_token, 0);
  EXPECT_EQ(matches[0].num_tokens, 2);
  EXPECT_EQ(matches[0].line, 0);
}

TEST(DocumentTest, FindPhraseToleratesPunctuation) {
  Document doc = TwoLineDoc();
  // Token is "Due:"; phrase word is "Due".
  EXPECT_EQ(doc.FindPhrase({"Amount", "Due"}).size(), 1u);
}

TEST(DocumentTest, FindPhraseRespectsLineBoundary) {
  Document doc = TwoLineDoc();
  // "$42.00 Total" spans two lines; must not match.
  EXPECT_TRUE(doc.FindPhrase({"$42.00", "Total"}).empty());
}

TEST(DocumentTest, FindPhraseNoMatch) {
  Document doc = TwoLineDoc();
  EXPECT_TRUE(doc.FindPhrase({"Subtotal"}).empty());
  EXPECT_TRUE(doc.FindPhrase({}).empty());
}

TEST(DocumentTest, ReplaceSameLengthKeepsAnnotations) {
  Document doc = TwoLineDoc();
  doc.ReplaceTokenRange(0, 2, {"Balance", "Owed"});
  EXPECT_EQ(doc.num_tokens(), 5);
  EXPECT_EQ(doc.token(0).text, "Balance");
  EXPECT_EQ(doc.token(1).text, "Owed");
  ASSERT_EQ(doc.annotations().size(), 1u);
  EXPECT_EQ(doc.annotations()[0].first_token, 2);
}

TEST(DocumentTest, ReplaceShorterShiftsAnnotations) {
  Document doc = TwoLineDoc();
  doc.ReplaceTokenRange(0, 2, {"Total"});
  EXPECT_EQ(doc.num_tokens(), 4);
  ASSERT_EQ(doc.annotations().size(), 1u);
  EXPECT_EQ(doc.annotations()[0].first_token, 1);
  EXPECT_EQ(doc.TextOf(doc.annotations()[0]), "$42.00");
}

TEST(DocumentTest, ReplaceLongerShiftsAnnotations) {
  Document doc = TwoLineDoc();
  doc.ReplaceTokenRange(0, 2, {"Total", "Amount", "Payable"});
  EXPECT_EQ(doc.num_tokens(), 6);
  ASSERT_EQ(doc.annotations().size(), 1u);
  EXPECT_EQ(doc.annotations()[0].first_token, 3);
  EXPECT_EQ(doc.TextOf(doc.annotations()[0]), "$42.00");
}

TEST(DocumentTest, ReplaceKeepsTotalWidth) {
  Document doc = TwoLineDoc();
  BBox before = doc.BoxOfRange(0, 2);
  doc.ReplaceTokenRange(0, 2, {"Total", "Amount", "Payable"});
  BBox after = doc.BoxOfRange(0, 3);
  EXPECT_NEAR(after.x_min, before.x_min, 1e-9);
  EXPECT_NEAR(after.x_max, before.x_max, 2.0);
  EXPECT_DOUBLE_EQ(after.y_min, before.y_min);
}

TEST(DocumentTest, ReplaceUpdatesLineTokenLists) {
  Document doc = TwoLineDoc();
  doc.ReplaceTokenRange(0, 2, {"Total"});
  EXPECT_EQ(doc.lines()[0].token_indices, (std::vector<int>{0, 1}));
  EXPECT_EQ(doc.lines()[1].token_indices, (std::vector<int>{2, 3}));
  EXPECT_EQ(doc.token(0).line, 0);
}

TEST(DocumentTest, ReplaceDropsOverlappingAnnotation) {
  Document doc = TwoLineDoc();
  doc.ReplaceTokenRange(2, 1, {"void"});
  EXPECT_TRUE(doc.annotations().empty());
}

TEST(DocumentTest, SameTokenTexts) {
  Document a = TwoLineDoc();
  Document b = TwoLineDoc();
  EXPECT_TRUE(a.SameTokenTexts(b));
  b.mutable_tokens()[0].text = "Amounts";
  EXPECT_FALSE(a.SameTokenTexts(b));
  Document c = TwoLineDoc();
  c.ReplaceTokenRange(0, 1, {"Amount"});
  EXPECT_TRUE(a.SameTokenTexts(c)) << "same text, different boxes";
}

TEST(DocumentTest, ReplacePreservesPhraseFindability) {
  Document doc = TwoLineDoc();
  doc.ReplaceTokenRange(0, 2, {"Balance", "Owed"});
  EXPECT_EQ(doc.FindPhrase({"Balance", "Owed"}).size(), 1u);
  EXPECT_TRUE(doc.FindPhrase({"Amount", "Due"}).empty());
}

// ---- Serialization round-trip fuzz sweep ----------------------------------
//
// write -> read -> write must be byte-identical: the first serialization
// quantizes coordinates to the printed precision, so parsing it back and
// printing again reproduces the same bytes exactly. A drift here breaks the
// golden corpus checksums.

TEST(SerializeFuzzTest, GeneratedCorporaRoundTripByteIdentically) {
  const char* domains[] = {"fara", "fcc_forms", "brokerage_statements",
                           "earnings", "loan_payments"};
  for (const char* domain : domains) {
    DomainSpec spec = SpecByName(domain);
    for (uint64_t seed : {7ULL, 1234ULL, 0xfeedULL}) {
      for (const Document& doc : GenerateCorpus(spec, 4, seed, "fuzz")) {
        std::string json1 = DocumentToJson(doc);
        std::optional<Document> parsed = DocumentFromJson(json1);
        ASSERT_TRUE(parsed.has_value()) << domain << " seed " << seed;
        EXPECT_EQ(DocumentToJson(*parsed), json1)
            << domain << " seed " << seed << " doc " << doc.id();
        // Structure survives, not just bytes.
        EXPECT_TRUE(parsed->SameTokenTexts(doc));
        EXPECT_EQ(parsed->annotations(), doc.annotations());
        EXPECT_EQ(parsed->lines().size(), doc.lines().size());
      }
    }
  }
}

TEST(SerializeFuzzTest, JsonlCorpusSurvivesSaveLoadSave) {
  std::vector<Document> corpus =
      GenerateCorpus(SpecByName("earnings"), 6, 77, "fuzz");
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "fieldswap_fuzz_jsonl";
  std::filesystem::create_directories(dir);
  std::string path_a = (dir / "a.jsonl").string();
  std::string path_b = (dir / "b.jsonl").string();

  ASSERT_TRUE(SaveCorpusJsonl(path_a, corpus));
  std::optional<std::vector<Document>> loaded = LoadCorpusJsonl(path_a);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), corpus.size());
  ASSERT_TRUE(SaveCorpusJsonl(path_b, *loaded));

  std::ifstream a(path_a), b(path_b);
  std::string bytes_a((std::istreambuf_iterator<char>(a)),
                      std::istreambuf_iterator<char>());
  std::string bytes_b((std::istreambuf_iterator<char>(b)),
                      std::istreambuf_iterator<char>());
  EXPECT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(SerializeFuzzTest, HostileDocumentRoundTrips) {
  // Negative coordinates, quotes/backslashes/control chars in text, an
  // empty-text token, and a token far off the page.
  Document doc("fuzz \"quoted\"\\id", "t", 100, 100);
  doc.AddToken("says \"hi\"", BBox{-5.25, -3.5, 12.125, 4.75});
  doc.AddToken("back\\slash", BBox{0, 10, 8, 20});
  doc.AddToken("tab\there", BBox{0, 30, 8, 40});
  doc.AddToken("", BBox{50, 50, 50, 50});
  doc.AddToken("far", BBox{9000, 9000, 9010, 9010});
  DetectAndAssignLines(doc);
  doc.AddAnnotation(EntitySpan{"field", 1, 2});

  std::string json1 = DocumentToJson(doc);
  std::optional<Document> parsed = DocumentFromJson(json1);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(DocumentToJson(*parsed), json1);
  EXPECT_EQ(parsed->id(), doc.id());
  EXPECT_TRUE(parsed->SameTokenTexts(doc));
  EXPECT_EQ(parsed->annotations(), doc.annotations());
}

}  // namespace
}  // namespace fieldswap
