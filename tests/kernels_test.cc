// Kernel-backend parity suite (ISSUE 7).
//
// The determinism contract under test:
//   - within a backend, results are bit-identical across thread counts and
//     across the graph vs graph-free forwards;
//   - across backends, float kernels may differ by a pinned number of ulps
//     (FMA contraction and vectorized tree reductions round differently);
//   - integer kernels (quantize, int8 GEMM) are exact on every backend;
//   - the int8-quantized snapshot stays within 0.005 micro-F1 of the float
//     model on a fixed-seed trained corpus.
//
// Every test sweeps nn::AvailableKernelBackends(), so on an AVX2 host the
// suite compares avx2 against the scalar reference, and on a plain host it
// degenerates to scalar-vs-scalar (still exercising shapes and contracts).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "eval/metrics.h"
#include "model/sequence_model.h"
#include "model/trainer.h"
#include "nn/kernels.h"
#include "nn/kernels/backend.h"
#include "nn/matrix.h"
#include "nn/ops.h"
#include "nn/quant.h"
#include "par/parallel.h"
#include "synth/domains.h"
#include "synth/generator.h"
#include "util/rng.h"

namespace fieldswap {
namespace {

/// Restores the active backend (and thread count) when a test ends, so the
/// sweep order of this suite can never leak into other tests.
class BackendGuard {
 public:
  BackendGuard() : backend_(nn::KernelBackendName()), threads_(par::Threads()) {}
  ~BackendGuard() {
    nn::SetKernelBackend(backend_);
    par::SetThreads(threads_);
  }

 private:
  std::string backend_;
  int threads_;
};

/// One ulp at the magnitude of `scale` (the spacing of floats there).
float UlpAt(float scale) {
  return std::nextafter(scale, std::numeric_limits<float>::infinity()) -
         scale;
}

/// Max elementwise |a - ref| measured in ulps AT THE SCALE OF THE LARGEST
/// REFERENCE VALUE. Plain per-element ulp distance is the wrong metric
/// here: FMA contraction changes each partial product by <= 1/2 ulp of the
/// PRODUCT, so when a sum cancels toward zero the absolute error stays
/// bounded by the operand scale while the per-element relative error — and
/// raw ulp distance — explodes. The contract backends must honor is
/// absolute error at operand scale, which this measures.
double MaxUlpAtScale(const Matrix& a, const Matrix& ref) {
  EXPECT_EQ(a.rows(), ref.rows());
  EXPECT_EQ(a.cols(), ref.cols());
  float scale = 0.0f;
  for (float v : ref.values()) {
    EXPECT_TRUE(std::isfinite(v));
    scale = std::max(scale, std::fabs(v));
  }
  const float ulp = UlpAt(std::max(scale, 1e-6f));
  double max_ulps = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!std::isfinite(a.data()[i])) {
      return std::numeric_limits<double>::infinity();
    }
    double diff = std::fabs(static_cast<double>(a.data()[i]) -
                            static_cast<double>(ref.data()[i]));
    max_ulps = std::max(max_ulps, diff / ulp);
  }
  return max_ulps;
}

double UlpAtScaleScalar(float a, float ref) {
  return std::fabs(static_cast<double>(a) - static_cast<double>(ref)) /
         UlpAt(std::max(std::fabs(ref), 1e-6f));
}

Matrix RandomMatrix(int rows, int cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      m.At(r, c) = static_cast<float>(rng.Uniform(-1.0, 1.0));
    }
  }
  return m;
}

std::vector<std::string> NonScalarBackends() {
  std::vector<std::string> out;
  for (const std::string& b : nn::AvailableKernelBackends()) {
    if (b != "scalar") out.push_back(b);
  }
  return out;
}

// Pinned cross-backend tolerances, in ulps at the scale of the largest
// scalar-reference value. The AVX2 backend measures at most 2 ulps on
// every case below, so these carry >= 4x headroom; a future backend that
// needs more is reordering more aggressively than the contract allows.
constexpr double kGemmUlpBound = 8;
constexpr double kLayerNormUlpBound = 8;
constexpr double kAttentionUlpBound = 16;

struct GemmShape {
  int m, k, n;
};

// Degenerate depths (k=0, k=1), odd widths that exercise every tail path,
// and tile-sized operands that exercise the blocked SIMD paths.
const GemmShape kGemmShapes[] = {
    {1, 1, 1}, {3, 0, 5},  {2, 1, 7},   {5, 13, 9},
    {7, 8, 8}, {8, 32, 16}, {12, 96, 33}, {9, 64, 96},
};

TEST(KernelBackends, ScalarAlwaysAvailableAndSelectable) {
  BackendGuard guard;
  std::vector<std::string> backends = nn::AvailableKernelBackends();
  ASSERT_FALSE(backends.empty());
  EXPECT_NE(std::find(backends.begin(), backends.end(), "scalar"),
            backends.end());
  for (const std::string& b : backends) {
    EXPECT_TRUE(nn::SetKernelBackend(b)) << b;
    EXPECT_EQ(nn::KernelBackendName(), b);
  }
  // An unknown backend is rejected and the active backend is unchanged.
  ASSERT_TRUE(nn::SetKernelBackend("scalar"));
  EXPECT_FALSE(nn::SetKernelBackend("not-a-backend"));
  EXPECT_EQ(nn::KernelBackendName(), "scalar");
  // "auto" and "" resolve to the best available backend (list head).
  EXPECT_TRUE(nn::SetKernelBackend("auto"));
  EXPECT_EQ(nn::KernelBackendName(), backends.front());
}

TEST(KernelParity, GemmAcrossBackendsWithinPinnedUlps) {
  BackendGuard guard;
  for (const GemmShape& shape : kGemmShapes) {
    SCOPED_TRACE(testing::Message() << "m=" << shape.m << " k=" << shape.k
                                    << " n=" << shape.n);
    Matrix a = RandomMatrix(shape.m, shape.k, 11);
    Matrix b = RandomMatrix(shape.k, shape.n, 22);
    Matrix seed_out = RandomMatrix(shape.m, shape.n, 33);

    ASSERT_TRUE(nn::SetKernelBackend("scalar"));
    Matrix ref(shape.m, shape.n);
    MatMulInto(a, b, ref);
    Matrix ref_accum = seed_out;
    MatMulAccumInto(a, b, ref_accum);

    for (const std::string& backend : NonScalarBackends()) {
      SCOPED_TRACE(backend);
      ASSERT_TRUE(nn::SetKernelBackend(backend));
      Matrix out(shape.m, shape.n);
      MatMulInto(a, b, out);
      EXPECT_LE(MaxUlpAtScale(out, ref), kGemmUlpBound);
      Matrix accum = seed_out;
      MatMulAccumInto(a, b, accum);
      EXPECT_LE(MaxUlpAtScale(accum, ref_accum), kGemmUlpBound);
    }

    if (shape.k == 0) {
      // Depth-0 products are exact on every backend: overwrite yields
      // zeros, accumulate leaves the output untouched.
      for (const std::string& backend : nn::AvailableKernelBackends()) {
        ASSERT_TRUE(nn::SetKernelBackend(backend));
        Matrix out = RandomMatrix(shape.m, shape.n, 44);
        MatMulInto(a, b, out);
        EXPECT_EQ(out, Matrix::Zeros(shape.m, shape.n)) << backend;
        Matrix accum = seed_out;
        MatMulAccumInto(a, b, accum);
        EXPECT_EQ(accum, seed_out) << backend;
      }
    }
  }
}

TEST(KernelParity, TransposedGemmAcrossBackendsWithinPinnedUlps) {
  BackendGuard guard;
  // C += A^T B with A [k,m], and C += A B^T with B [n,k].
  const int m = 7, k = 19, n = 34;
  Matrix at = RandomMatrix(k, m, 55);
  Matrix b = RandomMatrix(k, n, 66);
  Matrix a = RandomMatrix(m, k, 77);
  Matrix bt = RandomMatrix(n, k, 88);
  Matrix seed_out = RandomMatrix(m, n, 99);

  ASSERT_TRUE(nn::SetKernelBackend("scalar"));
  Matrix ref_ta = seed_out;
  MatMulTransAAccumInto(at, b, ref_ta);
  Matrix ref_tb = seed_out;
  MatMulTransBAccumInto(a, bt, ref_tb);
  float ref_dot = DotSpan(a.Row(0), a.Row(1), k);

  for (const std::string& backend : NonScalarBackends()) {
    SCOPED_TRACE(backend);
    ASSERT_TRUE(nn::SetKernelBackend(backend));
    Matrix out_ta = seed_out;
    MatMulTransAAccumInto(at, b, out_ta);
    EXPECT_LE(MaxUlpAtScale(out_ta, ref_ta), kGemmUlpBound);
    Matrix out_tb = seed_out;
    MatMulTransBAccumInto(a, bt, out_tb);
    EXPECT_LE(MaxUlpAtScale(out_tb, ref_tb), kGemmUlpBound);
    EXPECT_LE(UlpAtScaleScalar(DotSpan(a.Row(0), a.Row(1), k), ref_dot),
              kGemmUlpBound);
  }
}

TEST(KernelParity, LayerNormAcrossBackendsWithinPinnedUlps) {
  BackendGuard guard;
  for (int d : {8, 13, 96}) {
    SCOPED_TRACE(testing::Message() << "d=" << d);
    const int rows = 9;
    Matrix x = RandomMatrix(rows, d, 111);
    Matrix gain = RandomMatrix(1, d, 222);
    Matrix bias = RandomMatrix(1, d, 333);

    ASSERT_TRUE(nn::SetKernelBackend("scalar"));
    Matrix ref(rows, d);
    LayerNormInto(x, gain, bias, ref);
    for (const std::string& backend : NonScalarBackends()) {
      SCOPED_TRACE(backend);
      ASSERT_TRUE(nn::SetKernelBackend(backend));
      Matrix out(rows, d);
      LayerNormInto(x, gain, bias, out);
      EXPECT_LE(MaxUlpAtScale(out, ref), kLayerNormUlpBound);
    }
  }
}

TEST(KernelParity, NeighborAttentionAcrossBackendsWithinPinnedUlps) {
  BackendGuard guard;
  const int t = 33, d = 24;
  Matrix q = RandomMatrix(t, d, 444);
  Matrix k = RandomMatrix(t, d, 555);
  Matrix v = RandomMatrix(t, d, 666);
  std::vector<std::vector<int>> neighbors(t);
  for (int i = 0; i < t; ++i) {
    for (int j = std::max(0, i - 3); j <= std::min(t - 1, i + 3); ++j) {
      neighbors[static_cast<size_t>(i)].push_back(j);
    }
  }

  ASSERT_TRUE(nn::SetKernelBackend("scalar"));
  Matrix ref(t, d);
  NeighborAttentionInto(q, k, v, neighbors, ref);
  for (const std::string& backend : NonScalarBackends()) {
    SCOPED_TRACE(backend);
    ASSERT_TRUE(nn::SetKernelBackend(backend));
    Matrix out(t, d);
    NeighborAttentionInto(q, k, v, neighbors, out);
    EXPECT_LE(MaxUlpAtScale(out, ref), kAttentionUlpBound);
  }
}

TEST(KernelDeterminism, GraphAndGraphFreeForwardsBitIdenticalPerBackend) {
  BackendGuard guard;
  DomainSpec spec = EarningsSpec();
  std::vector<Document> docs = GenerateCorpus(spec, 3, 91, "kpar");
  SequenceLabelingModel model(SequenceModelConfig{}, spec.Schema());
  for (const std::string& backend : nn::AvailableKernelBackends()) {
    SCOPED_TRACE(backend);
    ASSERT_TRUE(nn::SetKernelBackend(backend));
    for (const Document& doc : docs) {
      EncodedDoc enc = model.EncodeDoc(doc);
      // Same kernels in the same order: the tape-free forward must match
      // the autodiff forward to the bit, not merely to a tolerance.
      EXPECT_EQ(model.InferLogits(enc), model.Logits(enc)->value);
      EXPECT_EQ(model.PredictEncoded(enc), model.PredictEncodedGraph(enc));
    }
  }
}

TEST(KernelDeterminism, ThreadCountBitIdentityPerBackend) {
  BackendGuard guard;
  DomainSpec spec = EarningsSpec();
  std::vector<Document> docs = GenerateCorpus(spec, 6, 92, "kthr");
  SequenceLabelingModel model(SequenceModelConfig{}, spec.Schema());
  Int8Plan plan = model.MakeInt8Plan();
  auto predict_all = [&](bool int8) {
    return par::ParallelMap(docs.size(), [&](size_t i) {
      EncodedDoc enc = model.EncodeDoc(docs[i]);
      return int8 ? model.PredictEncodedInt8(plan, enc)
                  : model.PredictEncoded(enc);
    });
  };
  for (const std::string& backend : nn::AvailableKernelBackends()) {
    SCOPED_TRACE(backend);
    ASSERT_TRUE(nn::SetKernelBackend(backend));
    par::SetThreads(1);
    auto float_serial = predict_all(false);
    auto int8_serial = predict_all(true);
    par::SetThreads(8);
    EXPECT_EQ(predict_all(false), float_serial);
    EXPECT_EQ(predict_all(true), int8_serial);
  }
}

TEST(Int8Kernels, QuantizeTransposedScaleAndShape) {
  BackendGuard guard;
  Matrix w = RandomMatrix(13, 7, 123);
  w.At(4, 2) = 2.54f;  // deterministic maxabs
  for (const std::string& backend : nn::AvailableKernelBackends()) {
    SCOPED_TRACE(backend);
    ASSERT_TRUE(nn::SetKernelBackend(backend));
    QuantizedTensor q = QuantizeTransposed(w);
    ASSERT_EQ(q.rows, w.cols());
    ASSERT_EQ(q.cols, w.rows());
    EXPECT_FLOAT_EQ(q.scale, 2.54f / 127.0f);
    // Transposed layout, round-to-nearest, every code in [-127, 127].
    for (int r = 0; r < q.rows; ++r) {
      for (int c = 0; c < q.cols; ++c) {
        int8_t code = q.data[static_cast<size_t>(r) * q.cols + c];
        EXPECT_GE(code, -127);
        float dequant = static_cast<float>(code) * q.scale;
        EXPECT_NEAR(dequant, w.At(c, r), q.scale * 0.5f + 1e-6f);
      }
    }
  }
  // All-zero weights quantize to scale 1 (not 0, which would divide by 0).
  QuantizedTensor zero = QuantizeTransposed(Matrix::Zeros(3, 4));
  EXPECT_FLOAT_EQ(zero.scale, 1.0f);
}

TEST(Int8Kernels, GemmI8ExactOnEveryBackend) {
  BackendGuard guard;
  const int m = 9, k = 35, n = 13;  // odd sizes exercise every tail path
  Rng rng(321);
  std::vector<int8_t> a(static_cast<size_t>(m) * k);
  std::vector<int8_t> bt(static_cast<size_t>(n) * k);
  for (int8_t& v : a) v = static_cast<int8_t>(rng.UniformInt(-127, 127));
  for (int8_t& v : bt) v = static_cast<int8_t>(rng.UniformInt(-127, 127));

  std::vector<int32_t> ref(static_cast<size_t>(m) * n, 0);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      int32_t sum = 0;
      for (int p = 0; p < k; ++p) {
        sum += static_cast<int32_t>(a[static_cast<size_t>(i) * k + p]) *
               static_cast<int32_t>(bt[static_cast<size_t>(j) * k + p]);
      }
      ref[static_cast<size_t>(i) * n + j] = sum;
    }
  }

  for (const std::string& backend : nn::AvailableKernelBackends()) {
    SCOPED_TRACE(backend);
    ASSERT_TRUE(nn::SetKernelBackend(backend));
    std::vector<int32_t> out(static_cast<size_t>(m) * n, -1);
    nn::ActiveKernels().gemm_i8(a.data(), bt.data(), out.data(), m, k, n);
    EXPECT_EQ(out, ref);
  }
}

TEST(Int8Snapshot, TrainedF1WithinHalfAPercentOfFloat) {
  BackendGuard guard;
  // Fixed-seed small train run (the golden suite's protocol, scaled to a
  // unit test), then a wider test corpus so one flipped span cannot move
  // micro-F1 by more than the tolerance being asserted.
  DomainSpec spec = EarningsSpec();
  std::vector<Document> train = GenerateCorpus(spec, 10, 93, "ktrain");
  std::vector<Document> test = GenerateCorpus(spec, 48, 94, "ktest");
  SequenceLabelingModel model(SequenceModelConfig{}, spec.Schema());
  TrainOptions options;
  options.total_steps = 300;
  options.validate_every = 100;
  TrainSequenceModel(model, train, {}, options);

  EvalResult float_eval = EvaluateModel(model, test);

  Int8Plan plan = model.MakeInt8Plan();
  std::map<std::string, FieldScore> scores;
  for (const Document& doc : test) {
    EncodedDoc enc = model.EncodeDoc(doc);
    AccumulateSpanScores(doc.annotations(),
                         model.PredictEncodedInt8(plan, enc), scores);
  }
  EvalResult int8_eval = FinalizeScores(std::move(scores));

  // The trained model must actually extract something, or the delta below
  // would be trivially zero.
  EXPECT_GT(float_eval.micro_f1, 0.1);
  EXPECT_NEAR(int8_eval.micro_f1, float_eval.micro_f1, 0.005);
}

}  // namespace
}  // namespace fieldswap
