// Golden regression suite: recomputes the canonical fixed-seed report
// (corpus checksums, augmentation counts, train/eval F1, attack-ladder
// degradation) and compares it byte-for-byte against the checked-in
// fixture. Any drift in corpus generation, serialization, augmentation,
// training, scoring, or the attack layer fails here with a line-level diff.
//
// Intentional behaviour changes: regenerate with tools/update_goldens.sh
// and commit the new fixture together with the change that explains it.

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "eval/golden.h"

namespace fieldswap {
namespace {

// Injected by tests/CMakeLists.txt; ctest runs from build/tests, so the
// fixture is located relative to the source tree, not the working dir.
#ifndef FIELDSWAP_REPO_ROOT
#error "FIELDSWAP_REPO_ROOT must be defined by the build"
#endif

std::string GoldenPath() {
  return std::string(FIELDSWAP_REPO_ROOT) + "/data/golden/golden.json";
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(GoldenTest, ReportMatchesCheckedInFixture) {
  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in) << "missing fixture " << GoldenPath()
                  << " — run tools/update_goldens.sh";
  std::string expected((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  std::string actual = ComputeGoldenReport();

  if (actual == expected) return;  // PASS

  // Pinpoint the first drifting line so the failure names the stage
  // (checksums, augmentation, train_eval, or attack_ladder).
  std::vector<std::string> want = SplitLines(expected);
  std::vector<std::string> got = SplitLines(actual);
  size_t n = std::min(want.size(), got.size());
  size_t first_diff = n;
  for (size_t i = 0; i < n; ++i) {
    if (want[i] != got[i]) {
      first_diff = i;
      break;
    }
  }
  std::ostringstream diff;
  if (first_diff < n) {
    diff << "first drift at line " << (first_diff + 1) << ":\n"
         << "  golden: " << want[first_diff] << "\n"
         << "  actual: " << got[first_diff] << "\n";
  } else {
    diff << "line counts differ: golden " << want.size() << ", actual "
         << got.size() << "\n";
  }
  FAIL() << "golden report drifted from " << GoldenPath() << "\n"
         << diff.str()
         << "If this change is intentional, regenerate the fixture with "
            "tools/update_goldens.sh and commit it with an explanation.";
}

TEST(GoldenTest, ReportIsInternallyReproducible) {
  // Two in-process computations must agree exactly — if this fails, the
  // pipeline itself is nondeterministic and the fixture comparison above
  // is meaningless noise.
  EXPECT_EQ(ComputeGoldenReport(), ComputeGoldenReport());
}

}  // namespace
}  // namespace fieldswap
