#include <gtest/gtest.h>

#include <map>
#include <set>

#include "model/annotators.h"
#include "synth/builder.h"
#include "synth/domains.h"
#include "synth/generator.h"
#include "synth/values.h"
#include "util/strings.h"

namespace fieldswap {
namespace {

// ---- Value samplers -------------------------------------------------------

TEST(ValuesTest, MoneyFormats) {
  ValueSampler sampler{Rng(1)};
  for (int i = 0; i < 50; ++i) {
    auto dollar = sampler.Money(10, 20000, MoneyStyle::kDollarSign);
    ASSERT_EQ(dollar.size(), 1u);
    EXPECT_EQ(dollar[0][0], '$');
    EXPECT_TRUE(IsMoneyToken(dollar[0])) << dollar[0];
    auto plain = sampler.Money(10, 20000, MoneyStyle::kPlain);
    EXPECT_TRUE(IsMoneyToken(plain[0])) << plain[0];
  }
}

TEST(ValuesTest, FormatMoneyKnownValues) {
  EXPECT_EQ(FormatMoney(3308.62), "3,308.62");
  EXPECT_EQ(FormatMoney(5.0), "5.00");
  EXPECT_EQ(FormatMoney(1234567.891), "1,234,567.89");
}

TEST(ValuesTest, DateFormats) {
  ValueSampler sampler{Rng(2)};
  auto slashed = sampler.Date(DateStyle::kSlashed);
  ASSERT_EQ(slashed.size(), 1u);
  EXPECT_TRUE(IsDateToken(slashed[0])) << slashed[0];
  auto iso = sampler.Date(DateStyle::kDashedIso);
  EXPECT_TRUE(IsDateToken(iso[0])) << iso[0];
  auto month = sampler.Date(DateStyle::kMonthName);
  EXPECT_EQ(month.size(), 3u);
}

TEST(ValuesTest, NumberDigits) {
  ValueSampler sampler{Rng(3)};
  for (int i = 0; i < 30; ++i) {
    auto number = sampler.Number(4, 8);
    ASSERT_EQ(number.size(), 1u);
    EXPECT_GE(number[0].size(), 4u);
    EXPECT_LE(number[0].size(), 8u);
    EXPECT_TRUE(IsAllDigits(number[0]));
  }
}

TEST(ValuesTest, AddressEndsWithStateZip) {
  ValueSampler sampler{Rng(4)};
  auto address = sampler.Address();
  ASSERT_GE(address.size(), 5u);
  EXPECT_EQ(address[address.size() - 2].size(), 2u);  // state
  EXPECT_EQ(address.back().size(), 5u);               // zip
  EXPECT_TRUE(IsZipToken(address.back()));
}

TEST(ValuesTest, PersonAndCompanyNames) {
  ValueSampler sampler{Rng(5)};
  EXPECT_EQ(sampler.PersonName().size(), 2u);
  auto company = sampler.CompanyName();
  EXPECT_GE(company.size(), 2u);
  EXPECT_LE(company.size(), 3u);
}

TEST(ValuesTest, CallSignShape) {
  ValueSampler sampler{Rng(6)};
  for (int i = 0; i < 20; ++i) {
    auto sign = sampler.CallSign();
    ASSERT_EQ(sign.size(), 1u);
    EXPECT_TRUE(sign[0][0] == 'K' || sign[0][0] == 'W');
    EXPECT_GE(sign[0].size(), 4u);
  }
}

TEST(ValuesTest, DeterministicInSeed) {
  ValueSampler a{Rng(7)}, b{Rng(7)};
  EXPECT_EQ(a.Address(), b.Address());
  EXPECT_EQ(a.PersonName(), b.PersonName());
}

// ---- Domain specs (Table I / II fidelity) ----------------------------------

struct ExpectedDomain {
  const char* name;
  int num_fields;
  int train_pool;
  int test_docs;
  // Table II: address, date, money, number, string.
  int by_type[5];
};

constexpr ExpectedDomain kExpected[] = {
    {"fara", 6, 200, 300, {0, 1, 0, 1, 4}},
    {"fcc_forms", 13, 200, 300, {1, 4, 2, 1, 5}},
    {"brokerage_statements", 18, 294, 186, {2, 4, 5, 0, 7}},
    {"earnings", 23, 2000, 1847, {2, 3, 15, 0, 3}},
    {"loan_payments", 35, 2000, 815, {3, 5, 20, 0, 7}},
};

class DomainSpecTest : public ::testing::TestWithParam<ExpectedDomain> {};

TEST_P(DomainSpecTest, MatchesPaperTables) {
  const ExpectedDomain& expected = GetParam();
  DomainSpec spec = SpecByName(expected.name);
  DomainSchema schema = spec.Schema();
  EXPECT_EQ(static_cast<int>(schema.num_fields()), expected.num_fields);
  EXPECT_EQ(spec.train_pool_size, expected.train_pool);
  EXPECT_EQ(spec.test_size, expected.test_docs);
  auto counts = schema.CountByType();
  EXPECT_EQ(static_cast<int>(counts[FieldType::kAddress]), expected.by_type[0]);
  EXPECT_EQ(static_cast<int>(counts[FieldType::kDate]), expected.by_type[1]);
  EXPECT_EQ(static_cast<int>(counts[FieldType::kMoney]), expected.by_type[2]);
  EXPECT_EQ(static_cast<int>(counts[FieldType::kNumber]), expected.by_type[3]);
  EXPECT_EQ(static_cast<int>(counts[FieldType::kString]), expected.by_type[4]);
}

TEST_P(DomainSpecTest, SectionsReferenceDeclaredFields) {
  DomainSpec spec = SpecByName(GetParam().name);
  for (const Section& section : spec.sections) {
    std::vector<std::string> referenced;
    switch (section.kind) {
      case Section::Kind::kHeader:
        referenced = section.header.fields;
        break;
      case Section::Kind::kKV:
        referenced = section.kv.fields;
        break;
      case Section::Kind::kTable:
        for (const std::string& prefix : section.table.column_prefixes) {
          for (const std::string& suffix : section.table.row_suffixes) {
            referenced.push_back(prefix + "." + suffix);
          }
        }
        break;
    }
    for (const std::string& field : referenced) {
      EXPECT_NE(spec.Find(field), nullptr) << field;
    }
  }
}

TEST_P(DomainSpecTest, EveryFieldIsRenderedBySomeSection) {
  DomainSpec spec = SpecByName(GetParam().name);
  std::set<std::string> rendered;
  for (const Section& section : spec.sections) {
    switch (section.kind) {
      case Section::Kind::kHeader:
        rendered.insert(section.header.fields.begin(),
                        section.header.fields.end());
        break;
      case Section::Kind::kKV:
        rendered.insert(section.kv.fields.begin(), section.kv.fields.end());
        break;
      case Section::Kind::kTable:
        for (const std::string& prefix : section.table.column_prefixes) {
          for (const std::string& suffix : section.table.row_suffixes) {
            rendered.insert(prefix + "." + suffix);
          }
        }
        break;
    }
  }
  for (const FieldDef& def : spec.fields) {
    EXPECT_TRUE(rendered.count(def.spec.name)) << def.spec.name;
  }
}

TEST_P(DomainSpecTest, NoPhraseFieldsHaveEmptySwapGroup) {
  DomainSpec spec = SpecByName(GetParam().name);
  for (const FieldDef& def : spec.fields) {
    if (def.phrases.empty()) {
      EXPECT_TRUE(def.swap_group.empty()) << def.spec.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDomains, DomainSpecTest,
                         ::testing::ValuesIn(kExpected),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(DomainsTest, AllEvalDomainsOrder) {
  auto domains = AllEvalDomains();
  ASSERT_EQ(domains.size(), 5u);
  EXPECT_EQ(domains[0].name, "fara");
  EXPECT_EQ(domains[4].name, "loan_payments");
}

TEST(DomainsTest, TableFieldsShareRowPhrases) {
  DomainSpec spec = EarningsSpec();
  const FieldDef* current = spec.Find("current.bonus");
  const FieldDef* ytd = spec.Find("year_to_date.bonus");
  ASSERT_NE(current, nullptr);
  ASSERT_NE(ytd, nullptr);
  // The contradictory-pair phenomenon of Sec. II-B requires identical
  // phrase vocabularies across the two columns.
  EXPECT_EQ(current->phrases, ytd->phrases);
  EXPECT_NE(current->swap_group, ytd->swap_group);
}

TEST(DomainsTest, RareFieldFrequenciesMatchTable4) {
  DomainSpec spec = EarningsSpec();
  EXPECT_NEAR(spec.Find("current.sales_pay")->spec.frequency, 0.0285, 1e-9);
  EXPECT_NEAR(spec.Find("year_to_date.sales_pay")->spec.frequency, 0.039, 1e-9);
  EXPECT_NEAR(spec.Find("current.pto_pay")->spec.frequency, 0.095, 1e-9);
  EXPECT_NEAR(spec.Find("year_to_date.pto_pay")->spec.frequency, 0.159, 1e-9);
}

// ---- Template styles ------------------------------------------------------

TEST(TemplateStyleTest, DeterministicPerId) {
  DomainSpec spec = EarningsSpec();
  TemplateStyle a = MakeTemplateStyle(spec, 3);
  TemplateStyle b = MakeTemplateStyle(spec, 3);
  EXPECT_EQ(a.font_size, b.font_size);
  EXPECT_EQ(a.phrase_choice, b.phrase_choice);
  EXPECT_EQ(a.kv_shuffle_salt, b.kv_shuffle_salt);
}

TEST(TemplateStyleTest, TemplatesDiffer) {
  DomainSpec spec = EarningsSpec();
  std::set<uint64_t> salts;
  for (int t = 0; t < spec.num_templates; ++t) {
    salts.insert(MakeTemplateStyle(spec, t).kv_shuffle_salt);
  }
  EXPECT_EQ(static_cast<int>(salts.size()), spec.num_templates);
}

TEST(TemplateStyleTest, PhraseForFieldComesFromVocabulary) {
  DomainSpec spec = EarningsSpec();
  for (int t = 0; t < spec.num_templates; ++t) {
    TemplateStyle style = MakeTemplateStyle(spec, t);
    std::string phrase = TemplatePhraseFor(spec, style, "current.salary");
    const auto& vocab = spec.Find("current.salary")->phrases;
    EXPECT_NE(std::find(vocab.begin(), vocab.end(), phrase), vocab.end())
        << phrase;
  }
  TemplateStyle style = MakeTemplateStyle(spec, 0);
  EXPECT_EQ(TemplatePhraseFor(spec, style, "employee_name"), "");
  EXPECT_EQ(TemplatePhraseFor(spec, style, "unknown_field"), "");
}

// ---- Builder --------------------------------------------------------------

TEST(BuilderTest, EmitWordsPlacesLeftToRight) {
  TemplateStyle style;
  DocumentBuilder builder("b", "test", style);
  EmitResult result = builder.EmitWords({"Amount", "Due"}, 100, 50);
  EXPECT_EQ(result.first_token, 0);
  EXPECT_EQ(result.num_tokens, 2);
  const Document& doc = builder.doc();
  EXPECT_LT(doc.token(0).box.x_max, doc.token(1).box.x_min);
  EXPECT_DOUBLE_EQ(doc.token(0).box.y_min, 50);
  EXPECT_GT(result.right_x, 100);
}

TEST(BuilderTest, EmitFieldAnnotates) {
  TemplateStyle style;
  DocumentBuilder builder("b", "test", style);
  builder.EmitField("total", {"$5.00"}, 10, 10);
  ASSERT_EQ(builder.doc().annotations().size(), 1u);
  EXPECT_EQ(builder.doc().annotations()[0].field, "total");
}

TEST(BuilderTest, FinishRunsLineDetection) {
  TemplateStyle style;
  DocumentBuilder builder("b", "test", style);
  builder.EmitWords({"Pay", "Date"}, 10, 10);
  builder.EmitWords({"Total"}, 10, 60);
  Document doc = builder.Finish();
  EXPECT_EQ(doc.lines().size(), 2u);
  EXPECT_GE(doc.token(0).line, 0);
}

// ---- Generator ------------------------------------------------------------

TEST(GeneratorTest, DeterministicInSeed) {
  DomainSpec spec = FccFormsSpec();
  Document a = GenerateDocument(spec, "x", 2, Rng(77));
  Document b = GenerateDocument(spec, "x", 2, Rng(77));
  EXPECT_TRUE(a.SameTokenTexts(b));
  EXPECT_EQ(a.annotations(), b.annotations());
}

TEST(GeneratorTest, AnnotationsAreValidSpans) {
  for (const DomainSpec& spec : AllEvalDomains()) {
    Document doc = GenerateDocument(spec, "x", 0, Rng(5));
    for (const EntitySpan& span : doc.annotations()) {
      EXPECT_GE(span.first_token, 0);
      EXPECT_LE(span.end_token(), doc.num_tokens());
      EXPECT_NE(spec.Find(span.field), nullptr) << span.field;
    }
  }
}

TEST(GeneratorTest, AnnotationsHaveDetectedLines) {
  Document doc = GenerateDocument(EarningsSpec(), "x", 1, Rng(6));
  EXPECT_FALSE(doc.lines().empty());
  for (const Token& tok : doc.tokens()) EXPECT_GE(tok.line, 0);
}

TEST(GeneratorTest, FrequenciesApproximatelyRespected) {
  DomainSpec spec = EarningsSpec();
  auto docs = GenerateCorpus(spec, 600, 99, "f");
  std::map<std::string, int> counts;
  for (const Document& doc : docs) {
    for (const EntitySpan& span : doc.annotations()) ++counts[span.field];
  }
  // pay_date at 0.95 should be nearly everywhere; sales_pay rare.
  EXPECT_GT(counts["pay_date"], 500);
  EXPECT_LT(counts["current.sales_pay"], 50);
  EXPECT_GT(counts["current.salary"], 500);
}

TEST(GeneratorTest, AtMostOneInstancePerField) {
  Document doc = GenerateDocument(LoanPaymentsSpec(), "x", 3, Rng(8));
  std::map<std::string, int> counts;
  for (const EntitySpan& span : doc.annotations()) ++counts[span.field];
  for (const auto& [field, count] : counts) {
    EXPECT_EQ(count, 1) << field;
  }
}

TEST(GeneratorTest, KeyPhraseAppearsNearLabeledField) {
  DomainSpec spec = EarningsSpec();
  // Find a doc with current.salary present; its template's phrase must
  // occur in the document.
  auto docs = GenerateCorpus(spec, 20, 3, "k");
  int checked = 0;
  for (const Document& doc : docs) {
    if (!doc.HasField("current.salary")) continue;
    bool found = false;
    for (const std::string& phrase : spec.Find("current.salary")->phrases) {
      if (!doc.FindPhrase(SplitWhitespace(phrase)).empty()) found = true;
    }
    EXPECT_TRUE(found) << doc.id();
    ++checked;
  }
  EXPECT_GT(checked, 5);
}

TEST(GeneratorTest, TemplatesProduceDistinctLayouts) {
  DomainSpec spec = EarningsSpec();
  Document a = GenerateDocument(spec, "a", 0, Rng(1));
  Document b = GenerateDocument(spec, "b", 1, Rng(1));
  EXPECT_FALSE(a.SameTokenTexts(b));
}

TEST(GeneratorTest, RowOrderVariesAcrossTemplates) {
  DomainSpec spec = EarningsSpec();
  // Collect the y-order of salary vs gross_pay rows across templates; at
  // least two templates must disagree.
  std::set<bool> orders;
  for (int t = 0; t < spec.num_templates; ++t) {
    for (uint64_t seed = 0; seed < 10; ++seed) {
      Document doc = GenerateDocument(spec, "x", t, Rng(seed));
      auto salary = doc.AnnotationsFor("current.salary");
      auto gross = doc.AnnotationsFor("current.gross_pay");
      if (salary.empty() || gross.empty()) continue;
      double y_salary = doc.token(salary[0].first_token).box.CenterY();
      double y_gross = doc.token(gross[0].first_token).box.CenterY();
      orders.insert(y_salary < y_gross);
      break;
    }
  }
  EXPECT_EQ(orders.size(), 2u) << "row order should differ across templates";
}

TEST(GeneratorTest, CorpusIdsAndSize) {
  auto docs = GenerateCorpus(FaraSpec(), 7, 1, "fara-test");
  ASSERT_EQ(docs.size(), 7u);
  EXPECT_EQ(docs[0].id(), "fara-test-0");
  EXPECT_EQ(docs[6].id(), "fara-test-6");
}

TEST(GeneratorTest, ValueMagnitudesFollowFieldRanges) {
  DomainSpec spec = EarningsSpec();
  auto docs = GenerateCorpus(spec, 80, 21, "m");
  for (const Document& doc : docs) {
    for (const EntitySpan& span : doc.AnnotationsFor("year_to_date.salary")) {
      std::string text = doc.TextOf(span);
      // YTD salary range is [640, 84000]; spot-check it is > 500.
      std::string digits;
      for (char c : text) {
        if (c != '$' && c != ',') digits.push_back(c);
      }
      EXPECT_GT(ParseDouble(digits.c_str(), 0.0), 500.0) << text;
    }
  }
}

}  // namespace
}  // namespace fieldswap
