// Fixture: every construct no-unseeded-rng must catch. Never compiled.
#include <random>

int Violations() {
  std::random_device rd;        // line 5: ambient entropy source
  std::mt19937 gen;             // line 6: default-constructed engine
  int a = rand();               // line 7: C rand
  srand(42);                    // line 8: C srand
  auto b = std::mt19937{}();    // line 9: default-constructed temporary
  return a + static_cast<int>(rd()) + static_cast<int>(gen()) +
         static_cast<int>(b);
}
