// Fixture: a justified suppression silences no-wall-clock. Never compiled.
#include <ctime>

long Suppressed() {
  // fslint: allow(no-wall-clock): fixture exercising the suppression path
  return time(nullptr);
}
