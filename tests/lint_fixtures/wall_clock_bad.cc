// Fixture: wall-clock reads no-wall-clock must catch. Never compiled.
#include <chrono>
#include <ctime>

double Violations() {
  auto a = std::chrono::steady_clock::now();           // line 6
  auto b = std::chrono::system_clock::now();           // line 7
  auto c = std::chrono::high_resolution_clock::now();  // line 8
  long d = time(nullptr);                              // line 9
  return static_cast<double>(d) + a.time_since_epoch().count() +
         b.time_since_epoch().count() + c.time_since_epoch().count();
}
