// Fixture: justified suppression of no-raw-thread. Never compiled.
#include <thread>

void Suppressed() {
  // fslint: allow(no-raw-thread): fixture exercising the suppression path
  std::thread worker([] {});
  worker.join();
}
