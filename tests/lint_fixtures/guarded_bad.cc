// Fixture: FS_GUARDED_BY members accessed without their guard. The
// annotation macros come from util/thread_annotations.h; this fixture is
// never compiled, so the bare macro names are fine.
#include <mutex>

class GuardedCounter {
 public:
  void Bump() {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;  // ok: mu_ held
  }
  int Peek() const {
    return count_;  // line 13: guarded-by
  }
  void Reset() FS_REQUIRES(mu_) { count_ = 0; }  // ok: caller holds mu_
  void Drain() {
    count_ = 0;  // line 17: guarded-by
    while (count_ > 0) {  // line 18: guarded-by
    }
  }

 private:
  mutable std::mutex mu_;
  int count_ FS_GUARDED_BY(mu_) = 0;
};
