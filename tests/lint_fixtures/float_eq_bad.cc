// Fixture: float-literal equality no-float-equality must catch. Never
// compiled.
bool Violations(double x, float y) {
  bool a = x == 0.0;     // line 4
  bool b = y != 1.5f;    // line 5
  bool c = 2.5 == x;     // line 6
  bool d = x == 1e-6;    // line 7: exponent form
  bool ok = x <= 0.5 && y >= 1.5f;  // comparisons, not equality: no hits
  return a || b || c || d || ok;
}
