// Fixture: banned C functions. Never compiled.
#include <cstdio>
#include <cstdlib>
#include <cstring>

int Violations(char* dst, const char* src) {
  sprintf(dst, "%s", src);   // line 7
  strcpy(dst, src);          // line 8
  return atoi(src);          // line 9
}
