// Fixture: suppressions that must be rejected. Never compiled.
#include <cstdlib>

int Bad(const char* src) {
  // fslint: allow(banned-function)
  int a = atoi(src);  // line 6: still reported — no justification given
  // fslint: allow(not-a-real-rule): the rule name does not exist
  return a;
}
