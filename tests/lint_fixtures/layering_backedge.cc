// Fixture: a layering back-edge. The test lints this content under the
// pretend path src/attack/layering_backedge.cc against the real
// tools/layers.txt manifest: attack must never include model/ or eval/.
#include "attack/ladder.h"
#include "doc/document.h"
#include "model/trainer.h"
#include "eval/metrics.h"

int Dummy() { return 0; }
