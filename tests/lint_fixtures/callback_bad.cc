// Fixture: user-supplied callback invoked while holding a lock. A
// callback that re-enters the locked object deadlocks, so
// no-lock-across-callback flags the call under the lock and accepts the
// copy-then-invoke-unlocked pattern. Never compiled.
#include <functional>
#include <mutex>

class Notifier {
 public:
  void Fire() {
    std::lock_guard<std::mutex> lock(notifier_mu_);
    on_event_(1);  // line 12: no-lock-across-callback
  }
  void FireSafely() {
    std::function<void(int)> copy;
    {
      std::lock_guard<std::mutex> lock(notifier_mu_);
      copy = on_event_;
    }
    copy(1);  // ok: lock released before invoking
  }

 private:
  std::mutex notifier_mu_;
  std::function<void(int)> on_event_;
};
