// Fixture: justified suppression of banned-function. Never compiled.
#include <cstdlib>

int Suppressed(const char* src) {
  // fslint: allow(banned-function): fixture exercising the suppression path
  return atoi(src);
}
