// Fixture: every rule pattern appears ONLY inside comments, strings, char
// literals, or raw strings — the lexer must keep fslint fully quiet here.
//
// In comments: rand() srand(7) std::random_device std::mt19937 gen;
// steady_clock::now() system_clock time(nullptr) std::thread std::async
// sprintf( strcpy( atoi( x == 0.5 for (auto& kv : unordered_map_var)
#include <string>

/* Block comment too: std::thread t; time(nullptr); y != 1.0f; atoi("4");
   for (int v : my_unordered_set) {} */

std::string Clean() {
  std::string a = "rand() time(nullptr) std::thread sprintf( x == 0.5";
  std::string b = "for (auto& kv : some_unordered_map) { strcpy(d, s); }";
  std::string c = R"raw(std::random_device rd; steady_clock::now();
      std::mt19937 gen; atoi(buf); y != 2.5f; std::async(f);)raw";
  char d = '"';
  std::string e = "std::unordered_map<int, int> m; for (auto& kv : m) {}";
  return a + b + c + d + e;
}
