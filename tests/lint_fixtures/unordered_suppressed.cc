// Fixture: justified suppression of no-unordered-iteration. Never compiled.
#include <unordered_set>

int Suppressed(const std::unordered_set<int>& seen) {
  int total = 0;
  // fslint: allow(no-unordered-iteration): order-independent sum; the
  // result is the same whatever order the buckets iterate in
  for (int v : seen) {
    total += v;
  }
  return total;
}
