// Fixture: a justified suppression silences no-unseeded-rng. Never compiled.
#include <random>

int Suppressed() {
  // fslint: allow(no-unseeded-rng): fixture exercising the suppression path
  int value = rand();
  return value;
}
