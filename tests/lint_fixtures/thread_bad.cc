// Fixture: raw threading primitives no-raw-thread must catch. Never compiled.
#include <future>
#include <thread>

void Violations() {
  std::thread worker([] {});              // line 6
  auto task = std::async([] { return 1; });  // line 7
  worker.join();
  task.get();
}
