// Fixture: an intentional lock-order inversion. Two functions acquire the
// same two mutexes in opposite orders — the classic ABBA deadlock the
// lock-order rule must report as an acquisition cycle, with both chains
// and their file:line anchors. Never compiled.
#include <mutex>

std::mutex first_mu;
std::mutex second_mu;

void ForwardOrder() {
  std::lock_guard<std::mutex> a(first_mu);
  std::lock_guard<std::mutex> b(second_mu);  // first -> second
}

void InvertedOrder() {
  std::lock_guard<std::mutex> b(second_mu);
  std::lock_guard<std::mutex> a(first_mu);  // second -> first: cycle
}
