// Fixture: justified suppression of guarded-by. Never compiled.
#include <mutex>

class SuppressedGauge {
 public:
  int Read() const {
    // fslint: allow(guarded-by): racy read is deliberate in this fixture
    return level_;
  }

 private:
  mutable std::mutex gauge_mu_;
  int level_ FS_GUARDED_BY(gauge_mu_) = 0;
};
