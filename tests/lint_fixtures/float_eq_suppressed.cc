// Fixture: justified suppression of no-float-equality. Never compiled.
bool Suppressed(float y) {
  // fslint: allow(no-float-equality): exact sentinel comparison on purpose
  return y == 0.0f;
}
