// Fixture: justified suppression of no-lock-across-callback. Never
// compiled.
#include <functional>
#include <mutex>

class QuietNotifier {
 public:
  void Fire() {
    std::lock_guard<std::mutex> lock(quiet_mu_);
    // fslint: allow(no-lock-across-callback): fixture exercising suppression
    on_done_();
  }

 private:
  std::mutex quiet_mu_;
  std::function<void()> on_done_;
};
