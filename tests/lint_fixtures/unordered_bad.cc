// Fixture: range-for over unordered containers. Never compiled.
#include <string>
#include <unordered_map>
#include <unordered_set>

int Violations(const std::unordered_map<std::string, int>& scores) {
  std::unordered_set<int> seen;
  int total = 0;
  for (const auto& [key, value] : scores) {  // line 9: param iteration
    total += value + static_cast<int>(key.size());
  }
  for (int v : seen) {  // line 12: local-variable iteration
    total += v;
  }
  return total;
}
