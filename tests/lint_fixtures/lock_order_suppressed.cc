// Fixture: justified suppression of lock-order. The cycle diagnostic
// anchors at its first witness line, so the suppression sits right above
// the earliest nested acquisition. Never compiled.
#include <mutex>

std::mutex alpha_mu;
std::mutex beta_mu;

void AlphaThenBeta() {
  std::lock_guard<std::mutex> a(alpha_mu);
  // fslint: allow(lock-order): fixture exercising the suppression path
  std::lock_guard<std::mutex> b(beta_mu);
}

void BetaThenAlpha() {
  std::lock_guard<std::mutex> b(beta_mu);
  std::lock_guard<std::mutex> a(alpha_mu);
}
