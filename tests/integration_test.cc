#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "model/trainer.h"
#include "ocr/line_detector.h"
#include "ocr/noise.h"
#include "util/strings.h"
#include "synth/domains.h"
#include "synth/generator.h"

namespace fieldswap {
namespace {

/// Shared small pre-trained candidate model (built once per test binary).
const CandidateScoringModel& SharedCandidateModel() {
  static const CandidateScoringModel* model = [] {
    return new CandidateScoringModel(PretrainInvoiceCandidateModel(60, 99));
  }();
  return *model;
}

TEST(IntegrationTest, AutomaticPipelineEndToEnd) {
  DomainSpec spec = EarningsSpec();
  auto docs = GenerateCorpus(spec, 12, 123, "it");
  FieldSwapPipelineOptions options;
  options.strategy = MappingStrategy::kTypeToType;
  AugmentationResult result =
      RunFieldSwap(docs, spec, &SharedCandidateModel(), options);
  EXPECT_FALSE(result.phrases.empty());
  EXPECT_FALSE(result.pairs.empty());
  EXPECT_GT(result.synthetics.size(), docs.size())
      << "type-to-type should multiply the training set";
  // Inferred table-row phrases should include real vocabulary entries.
  bool found_real_phrase = false;
  for (const auto& [field, phrases] : result.phrases) {
    const FieldDef* def = spec.Find(field);
    if (def == nullptr) continue;
    for (const KeyPhrase& phrase : phrases) {
      for (const std::string& truth : def->phrases) {
        if (EqualsIgnoreCase(phrase.Text(), truth)) found_real_phrase = true;
      }
    }
  }
  EXPECT_TRUE(found_real_phrase);
}

TEST(IntegrationTest, TrainOnAugmentedSetAndEvaluate) {
  DomainSpec spec = FaraSpec();
  auto train = GenerateCorpus(spec, 10, 7, "tr");
  auto test = GenerateCorpus(spec, 12, 8, "te");

  FieldSwapPipelineOptions options;
  options.strategy = MappingStrategy::kHumanExpert;
  AugmentationResult augmented = RunFieldSwap(train, spec, nullptr, options);

  SequenceModelConfig model_config;
  model_config.d_model = 16;
  SequenceLabelingModel model(model_config, spec.Schema());
  TrainOptions train_options;
  train_options.total_steps = 600;
  train_options.validate_every = 150;
  TrainSequenceModel(model, train, augmented.synthetics, train_options);

  EvalResult eval = EvaluateModel(model, test);
  EXPECT_GT(eval.micro_f1, 0.2);
  EXPECT_GT(eval.macro_f1, 0.1);
  EXPECT_FALSE(eval.per_field.empty());
}

TEST(IntegrationTest, ExperimentRunnerProducesCurves) {
  ExperimentConfig config;
  config.train_sizes = {6};
  config.num_subsets = 1;
  config.num_trials = 1;
  config.test_size = 10;
  config.min_steps = 200;
  config.steps_per_doc = 1;
  ExperimentRunner runner(FaraSpec(), config, &SharedCandidateModel());

  LearningCurve baseline = runner.Run(BaselineSetting());
  ASSERT_EQ(baseline.by_size.size(), 1u);
  const PointResult& point = baseline.by_size.at(6);
  EXPECT_GE(point.macro_f1_mean, 0.0);
  EXPECT_LE(point.macro_f1_mean, 100.0);
  EXPECT_FALSE(point.field_f1_mean.empty());

  LearningCurve fieldswap =
      runner.Run(FieldSwapSetting(MappingStrategy::kFieldToField));
  EXPECT_EQ(fieldswap.setting_label, "fieldswap (field-to-field)");
  EXPECT_GE(fieldswap.by_size.at(6).avg_synthetics, 0.0);
}

TEST(IntegrationTest, CountSyntheticsUncapped) {
  ExperimentConfig config;
  config.train_sizes = {8};
  config.num_subsets = 1;
  config.test_size = 5;
  config.max_synthetics_for_training = 10;  // cap must not affect counting
  ExperimentRunner runner(EarningsSpec(), config, &SharedCandidateModel());
  double count =
      runner.CountSynthetics(FieldSwapSetting(MappingStrategy::kTypeToType), 8);
  EXPECT_GT(count, 10.0);
  EXPECT_EQ(runner.CountSynthetics(BaselineSetting(), 8), 0.0);
}

TEST(IntegrationTest, FieldSwapBeatsBaselineAtTenDocsOnEarnings) {
  // The paper's headline effect (Fig. 4, Earnings @ 10 docs). Kept small:
  // one subset, one trial, reduced steps — the margin is wide at 10 docs.
  ExperimentConfig config;
  config.train_sizes = {10};
  config.num_subsets = 1;
  config.num_trials = 1;
  config.test_size = 30;
  config.min_steps = 1500;
  ExperimentRunner runner(EarningsSpec(), config, &SharedCandidateModel());
  LearningCurve baseline = runner.Run(BaselineSetting());
  LearningCurve expert =
      runner.Run(FieldSwapSetting(MappingStrategy::kHumanExpert));
  EXPECT_GT(expert.by_size.at(10).macro_f1_mean + 2.0,
            baseline.by_size.at(10).macro_f1_mean)
      << "FieldSwap (human expert) should be at least neutral";
}

TEST(IntegrationTest, EnvOverridesApply) {
  ExperimentConfig config;
  setenv("FIELDSWAP_TRIALS", "7", 1);
  setenv("FIELDSWAP_TEST_DOCS", "33", 1);
  ApplyEnvOverrides(config);
  EXPECT_EQ(config.num_trials, 7);
  EXPECT_EQ(config.test_size, 33);
  unsetenv("FIELDSWAP_TRIALS");
  unsetenv("FIELDSWAP_TEST_DOCS");
}

TEST(IntegrationTest, CachedCandidateModelRoundTrips) {
  std::string path = ::testing::TempDir() + "/cand_cache_test.ckpt";
  std::remove(path.c_str());
  setenv("FIELDSWAP_PRETRAIN_DOCS", "20", 1);
  CandidateScoringModel first = GetOrTrainCachedCandidateModel(path);
  CandidateScoringModel second = GetOrTrainCachedCandidateModel(path);
  unsetenv("FIELDSWAP_PRETRAIN_DOCS");
  auto pa = first.Params();
  auto pb = second.Params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].param->value, pb[i].param->value) << pa[i].name;
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, OcrNoiseRobustnessOfSwap) {
  // FieldSwap still generates (and relabels) correctly on noisy documents.
  DomainSpec spec = EarningsSpec();
  auto docs = GenerateCorpus(spec, 6, 55, "nz");
  OcrNoiseOptions noise;
  noise.box_jitter_frac = 0.05;
  Rng rng(1);
  for (Document& doc : docs) {
    ApplyOcrNoise(doc, noise, rng);
    DetectAndAssignLines(doc);
  }
  FieldSwapPipelineOptions options;
  options.strategy = MappingStrategy::kHumanExpert;
  AugmentationResult result = RunFieldSwap(docs, spec, nullptr, options);
  EXPECT_GT(result.synthetics.size(), 0u);
}

}  // namespace
}  // namespace fieldswap
