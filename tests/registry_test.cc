// Tests for the multi-tenant model registry and the fair-batching tenant
// server (ISSUE 8): lineage semantics (monotonic versions, append-only
// rollback), the concurrency battery (concurrent publish/rollback/extract
// across >= 4 tenants under raw threads, TSan-clean), quota-exhaustion
// rejection with an actionable reason, and the deterministic fairness
// bound — a flooding tenant cannot push another tenant's p100 queue wait
// (in batches) past its quota-implied bound.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "doc/document.h"
#include "model/sequence_model.h"
#include "par/parallel.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/tenant_server.h"
#include "synth/domains.h"
#include "synth/generator.h"

namespace fieldswap {
namespace serve {
namespace {

std::vector<Document> TestCorpus(int count, uint64_t seed = 91) {
  return GenerateCorpus(InvoicesSpec(), count, seed, "registry-test");
}

/// Untrained seeded model: Predict stays a pure deterministic function of
/// the weights, which is all registry/scheduling tests need.
SequenceLabelingModel TestModel(uint64_t seed) {
  SequenceModelConfig config;
  config.seed = seed;
  return SequenceLabelingModel(config, InvoicesSpec().Schema());
}

// ---- Lineage semantics ----------------------------------------------------

TEST(ModelRegistryTest, PublishAssignsMonotonicVersionsPerTenant) {
  ModelRegistry registry;
  EXPECT_FALSE(registry.Has("a"));
  EXPECT_EQ(registry.ActiveVersion("a"), 0u);
  EXPECT_EQ(registry.Active("a"), nullptr);

  EXPECT_EQ(registry.Publish("a", MakeSnapshot(TestModel(1), "a-v1")), 1u);
  EXPECT_EQ(registry.Publish("a", MakeSnapshot(TestModel(2), "a-v2")), 2u);
  EXPECT_EQ(registry.Publish("b", MakeSnapshot(TestModel(3), "b-v1")), 1u)
      << "version numbering is per tenant, not global";

  EXPECT_TRUE(registry.Has("a"));
  EXPECT_EQ(registry.ActiveVersion("a"), 2u);
  EXPECT_EQ(registry.Active("a")->version(), "a-v2");
  EXPECT_EQ(registry.Tenants(), (std::vector<std::string>{"a", "b"}));
}

TEST(ModelRegistryTest, RollbackIsAtomicAppendOnlyAndNumberingContinues) {
  ModelRegistry registry;
  registry.Publish("t", MakeSnapshot(TestModel(1), "v1"));
  registry.Publish("t", MakeSnapshot(TestModel(2), "v2"));
  registry.Publish("t", MakeSnapshot(TestModel(3), "v3"));

  EXPECT_TRUE(registry.Rollback("t", 1));
  EXPECT_EQ(registry.ActiveVersion("t"), 1u);
  EXPECT_EQ(registry.Active("t")->version(), "v1");

  // Rollback deletes nothing: the full lineage is still visible and any
  // version can be re-activated.
  std::vector<PublishedVersion> lineage = registry.Lineage("t");
  ASSERT_EQ(lineage.size(), 3u);
  EXPECT_EQ(lineage[0].version, 1u);
  EXPECT_EQ(lineage[2].version, 3u);
  EXPECT_TRUE(registry.Rollback("t", 3));
  EXPECT_EQ(registry.ActiveVersion("t"), 3u);

  // Publishing after a rollback continues the numbering — version numbers
  // identify one snapshot forever, they are never reused.
  registry.Rollback("t", 1);
  EXPECT_EQ(registry.Publish("t", MakeSnapshot(TestModel(4), "v4")), 4u);
  EXPECT_EQ(registry.ActiveVersion("t"), 4u);
  EXPECT_EQ(registry.Lineage("t").size(), 4u);

  EXPECT_FALSE(registry.Rollback("t", 99));
  EXPECT_FALSE(registry.Rollback("ghost", 1));
  EXPECT_EQ(registry.ActiveVersion("t"), 4u) << "failed rollback is a no-op";
}

TEST(ModelRegistryTest, QuotaDefaultsAndOverrides) {
  ModelRegistry registry;
  EXPECT_EQ(registry.Quota("t").queue_capacity, 64);
  EXPECT_EQ(registry.Quota("t").batch_quantum, 16);
  TenantQuota quota;
  quota.queue_capacity = 4;
  quota.batch_quantum = 2;
  registry.SetQuota("t", quota);
  EXPECT_EQ(registry.Quota("t").queue_capacity, 4);
  EXPECT_EQ(registry.Quota("t").batch_quantum, 2);
  EXPECT_NE(TenantQuota{.queue_capacity = 0}.Validate().find("queue_capacity"),
            std::string::npos);
  EXPECT_NE(TenantQuota{.batch_quantum = 0}.Validate().find("batch_quantum"),
            std::string::npos);
}

TEST(ServeStatusTest, TenantStatusNames) {
  EXPECT_STREQ(ServeStatusName(ServeStatus::kRejectedQuota),
               "rejected_quota");
  EXPECT_STREQ(ServeStatusName(ServeStatus::kRejectedUnknownTenant),
               "rejected_unknown_tenant");
}

// ---- Admission ------------------------------------------------------------

TEST(MultiTenantServerTest, UnknownTenantRejectsWithReason) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->Publish("known", MakeSnapshot(TestModel(1)));
  MultiTenantServer server(registry);
  std::vector<Document> corpus = TestCorpus(1);

  ExtractResponse response = server.Extract("ghost", corpus[0]);
  EXPECT_EQ(response.status, ServeStatus::kRejectedUnknownTenant);
  EXPECT_EQ(response.tenant, "ghost");
  EXPECT_NE(response.error.find("no published model"), std::string::npos);
  EXPECT_EQ(server.Extract("known", corpus[0]).status, ServeStatus::kOk);
}

TEST(MultiTenantServerTest, QuotaExhaustionRejectsWithReasonAndIsPerTenant) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->Publish("small", MakeSnapshot(TestModel(1)));
  registry->Publish("roomy", MakeSnapshot(TestModel(2)));
  TenantQuota tight;
  tight.queue_capacity = 2;
  registry->SetQuota("small", tight);
  MultiTenantServer server(registry);
  std::vector<Document> corpus = TestCorpus(3);

  int64_t id0 = server.Submit("small", corpus[0]);
  int64_t id1 = server.Submit("small", corpus[1]);
  EXPECT_EQ(server.queue_depth("small"), 2);
  int64_t over = server.Submit("small", corpus[2]);  // past quota: shed

  ExtractResponse rejected = server.Wait(over);
  EXPECT_EQ(rejected.status, ServeStatus::kRejectedQuota);
  EXPECT_EQ(rejected.tenant, "small");
  EXPECT_NE(rejected.error.find("quota exhausted (capacity 2)"),
            std::string::npos);
  EXPECT_NE(rejected.error.find("TenantQuota.queue_capacity"),
            std::string::npos);
  EXPECT_TRUE(rejected.spans.empty());

  // Another tenant's admission is untouched by small's backpressure.
  EXPECT_EQ(server.Extract("roomy", corpus[2]).status, ServeStatus::kOk);

  EXPECT_EQ(server.Wait(id0).status, ServeStatus::kOk);
  EXPECT_EQ(server.Wait(id1).status, ServeStatus::kOk);
  EXPECT_EQ(server.stats("small").rejected_quota, 1);
  EXPECT_EQ(server.stats("roomy").rejected_quota, 0);
}

TEST(MultiTenantServerTest, ResponsesCarryTenantAndVersion) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->Publish("t", MakeSnapshot(TestModel(1), "first"));
  registry->Publish("t", MakeSnapshot(TestModel(2), "second"));
  MultiTenantServer server(registry);
  std::vector<Document> corpus = TestCorpus(1);

  ExtractResponse response = server.Extract("t", corpus[0]);
  EXPECT_EQ(response.status, ServeStatus::kOk);
  EXPECT_EQ(response.tenant, "t");
  EXPECT_EQ(response.tenant_version, 2u);
  EXPECT_EQ(response.snapshot_version, "second");
  EXPECT_EQ(response.batches_waited, 0);
}

// ---- Concurrency battery --------------------------------------------------

// Concurrent publish/rollback/extract across 4 tenants under raw threads.
// Every tenant is owned by one publisher thread (so per-tenant version
// order is defined), while extractor threads hammer all tenants through
// the MultiTenantServer and a reader thread polls the registry. The test
// is meaningful under TSan (tools/check_sanitizers.sh runs it): it must be
// clean, and every response must be internally consistent — the exact
// spans of the model that owns the reported tenant_version, never a blend
// and never a version outside the tenant's lineage.
TEST(ModelRegistryTest, ConcurrentPublishRollbackExtractAcrossFourTenants) {
  // Serial par pool: batches run inline in whichever thread leads, keeping
  // the concurrency in THIS test's raw threads rather than the pool.
  const int prior_threads = par::Threads();
  par::SetThreads(1);

  const std::vector<std::string> tenants = {"alpha", "beta", "gamma", "delta"};
  constexpr int kVersionsPerTenant = 3;
  const std::vector<Document> corpus = TestCorpus(3);

  // Version v of tenant i always wraps the model seeded 100*i + v, so any
  // (tenant, tenant_version) response can be checked against ground truth.
  auto seed_of = [](size_t tenant_index, uint64_t version) {
    return 100 * static_cast<uint64_t>(tenant_index) + version;
  };
  std::vector<std::vector<std::vector<EntitySpan>>> expected(tenants.size());
  for (size_t t = 0; t < tenants.size(); ++t) {
    for (uint64_t v = 1; v <= kVersionsPerTenant; ++v) {
      SequenceLabelingModel model = TestModel(seed_of(t, v));
      for (const Document& doc : corpus) {
        expected[t].push_back(model.Predict(doc));
      }
    }
  }
  auto expected_spans = [&](size_t t, uint64_t version, size_t doc)
      -> const std::vector<EntitySpan>& {
    return expected[t][(version - 1) * corpus.size() + doc];
  };

  auto registry = std::make_shared<ModelRegistry>();
  for (size_t t = 0; t < tenants.size(); ++t) {
    registry->Publish(tenants[t], MakeSnapshot(TestModel(seed_of(t, 1))));
  }
  MultiTenantServer server(registry);

  std::atomic<int> violations{0};
  std::atomic<int> served{0};

  // Publishers: each owns two tenants; publishes the remaining versions
  // and rolls back, asserting monotonic version assignment and
  // no-stale-read (the registry must reflect a publish the moment it
  // returns — no other thread mutates these tenants).
  auto publish_own = [&](size_t tenant_index) {
    uint64_t last = 1;
    for (uint64_t v = 2; v <= kVersionsPerTenant; ++v) {
      uint64_t got = registry->Publish(
          tenants[tenant_index], MakeSnapshot(TestModel(
                                     seed_of(tenant_index, v))));
      if (got <= last) ++violations;  // monotonic, never reused
      last = got;
      if (registry->ActiveVersion(tenants[tenant_index]) != got) {
        ++violations;  // stale read after publish returned
      }
      if (!registry->Rollback(tenants[tenant_index], got - 1)) ++violations;
      if (registry->ActiveVersion(tenants[tenant_index]) != got - 1) {
        ++violations;  // stale read after rollback returned
      }
      if (!registry->Rollback(tenants[tenant_index], got)) ++violations;
    }
  };
  auto publisher = [&](size_t first, size_t second) {
    publish_own(first);
    publish_own(second);
  };

  auto extractor = [&](int worker) {
    for (int j = 0; j < 24; ++j) {
      size_t t = static_cast<size_t>(worker + j) % tenants.size();
      size_t d = static_cast<size_t>(j) % corpus.size();
      ExtractResponse response = server.Extract(tenants[t], corpus[d]);
      if (response.status != ServeStatus::kOk) {
        ++violations;
        continue;
      }
      if (response.tenant != tenants[t] || response.tenant_version < 1 ||
          response.tenant_version > kVersionsPerTenant) {
        ++violations;
        continue;
      }
      if (response.spans != expected_spans(t, response.tenant_version, d)) {
        ++violations;  // response blends versions or serves stale cache
      }
      ++served;
    }
  };

  auto reader = [&] {
    for (int j = 0; j < 200; ++j) {
      for (const std::string& tenant : tenants) {
        PublishedVersion entry = registry->ActiveEntry(tenant);
        if (entry.snapshot == nullptr || entry.version < 1 ||
            entry.version > kVersionsPerTenant) {
          ++violations;  // tenants never disappear, versions stay in lineage
        }
      }
    }
  };

  // fslint: allow(no-raw-thread): the battery needs genuinely concurrent
  // publishers/extractors/readers; the par pool is the serialized system
  // under test here, not a usable source of concurrency.
  std::vector<std::thread> threads;
  threads.emplace_back(publisher, 0, 1);
  threads.emplace_back(publisher, 2, 3);
  for (int w = 0; w < 4; ++w) threads.emplace_back(extractor, w);
  threads.emplace_back(reader);
  // fslint: allow(no-raw-thread): joining the raw battery threads above.
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(served.load(), 4 * 24);
  for (size_t t = 0; t < tenants.size(); ++t) {
    EXPECT_EQ(registry->ActiveVersion(tenants[t]), kVersionsPerTenant);
    EXPECT_EQ(registry->Lineage(tenants[t]).size(),
              static_cast<size_t>(kVersionsPerTenant));
  }
  par::SetThreads(prior_threads);
}

// ---- Fairness -------------------------------------------------------------

// A flooding tenant cannot push another tenant's p100 queue wait past its
// quota-implied bound. Fully deterministic: the driver is single-threaded
// and the bound is measured in whole batches (batches_waited), not wall
// time. With T active tenants each getting one DRR turn per cycle, a
// tenant submitting at most its effective quantum per round is always
// served within one full cycle: p100 batches_waited <= T, no matter how
// many thousands of documents the hot tenant has queued.
TEST(MultiTenantServerTest, FloodingTenantCannotStarveOthersPastQuotaBound) {
  auto registry = std::make_shared<ModelRegistry>();
  const std::vector<std::string> victims = {"victim-a", "victim-b",
                                            "victim-c"};
  registry->Publish("hot", MakeSnapshot(TestModel(1)));
  for (size_t i = 0; i < victims.size(); ++i) {
    registry->Publish(victims[i], MakeSnapshot(TestModel(10 + i)));
  }
  TenantQuota hot_quota;
  hot_quota.queue_capacity = 24;  // the admission cap that contains the flood
  hot_quota.batch_quantum = 4;
  registry->SetQuota("hot", hot_quota);
  TenantQuota victim_quota;
  victim_quota.queue_capacity = 8;
  victim_quota.batch_quantum = 4;
  for (const std::string& victim : victims) {
    registry->SetQuota(victim, victim_quota);
  }

  ServeOptions options;
  options.max_batch = 4;
  std::vector<Document> corpus = TestCorpus(8);

  MultiTenantServer fair_server(registry, options);
  int hot_rejected = 0;
  for (int round = 0; round < 6; ++round) {
    // The hot tenant floods: submit far past its quota every round.
    std::vector<int64_t> hot_ids;
    for (int i = 0; i < 40; ++i) {
      hot_ids.push_back(
          fair_server.Submit("hot", corpus[static_cast<size_t>(i) %
                                           corpus.size()]));
    }
    // Victims submit a modest burst, within their quantum.
    std::vector<int64_t> victim_ids;
    for (const std::string& victim : victims) {
      for (int i = 0; i < 2; ++i) {
        victim_ids.push_back(fair_server.Submit(
            victim, corpus[static_cast<size_t>(round * 2 + i) %
                           corpus.size()]));
      }
    }
    for (int64_t id : victim_ids) {
      EXPECT_EQ(fair_server.Wait(id).status, ServeStatus::kOk);
    }
    for (int64_t id : hot_ids) {
      ExtractResponse response = fair_server.Wait(id);
      if (response.status == ServeStatus::kRejectedQuota) ++hot_rejected;
    }
  }

  const int64_t num_tenants = 4;  // hot + 3 victims
  for (const std::string& victim : victims) {
    TenantStats stats = fair_server.stats(victim);
    EXPECT_EQ(stats.served, stats.submitted) << victim;
    EXPECT_EQ(stats.rejected_quota, 0) << victim;
    EXPECT_LE(stats.max_batches_waited, num_tenants)
        << victim << ": a victim inside its quantum must be served within "
        << "one DRR cycle regardless of the hot tenant's backlog";
  }
  // The flood is contained by admission, not by slowing victims: the hot
  // tenant overshot its queue capacity every round.
  EXPECT_GT(hot_rejected, 0);
  EXPECT_EQ(fair_server.stats("hot").rejected_quota, hot_rejected);
  // DRR turn accounting: the hot tenant can never serve more than its
  // effective quantum per turn.
  TenantStats hot_stats = fair_server.stats("hot");
  EXPECT_LE(hot_stats.served,
            hot_stats.turn_batches * options.max_batch + hot_stats.packed_docs);
}

// ---- Hot swap while serving another tenant --------------------------------

TEST(MultiTenantServerTest, PublishForOneTenantLandsBetweenBatches) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->Publish("stable", MakeSnapshot(TestModel(1), "stable-v1"));
  registry->Publish("moving", MakeSnapshot(TestModel(2), "moving-v1"));
  MultiTenantServer server(registry);
  std::vector<Document> corpus = TestCorpus(2);

  SequenceLabelingModel stable_model = TestModel(1);
  SequenceLabelingModel moved_model = TestModel(3);

  ExtractResponse before = server.Extract("moving", corpus[0]);
  EXPECT_EQ(before.tenant_version, 1u);

  registry->Publish("moving", MakeSnapshot(TestModel(3), "moving-v2"));

  // The publish is visible to the next batch for "moving" and invisible to
  // "stable" — per-tenant lineage, per-tenant swap.
  ExtractResponse after = server.Extract("moving", corpus[0]);
  EXPECT_EQ(after.tenant_version, 2u);
  EXPECT_EQ(after.snapshot_version, "moving-v2");
  EXPECT_FALSE(after.cache_hit)
      << "cache keys include the snapshot sequence; a publish must miss";
  EXPECT_EQ(after.spans, moved_model.Predict(corpus[0]));

  ExtractResponse stable = server.Extract("stable", corpus[0]);
  EXPECT_EQ(stable.tenant_version, 1u);
  EXPECT_EQ(stable.spans, stable_model.Predict(corpus[0]));
}

}  // namespace
}  // namespace serve
}  // namespace fieldswap
