#include <gtest/gtest.h>

#include "doc/span_match.h"
#include "eval/metrics.h"

namespace fieldswap {
namespace {

EntitySpan Span(const char* field, int first, int count) {
  return EntitySpan{field, first, count};
}

TEST(FieldScoreTest, PrecisionRecallF1) {
  FieldScore score;
  score.tp = 3;
  score.fp = 1;
  score.fn = 2;
  EXPECT_DOUBLE_EQ(score.Precision(), 0.75);
  EXPECT_DOUBLE_EQ(score.Recall(), 0.6);
  EXPECT_NEAR(score.F1(), 2.0 * 3 / (2.0 * 3 + 1 + 2), 1e-12);
}

TEST(FieldScoreTest, ZeroDenominators) {
  FieldScore empty;
  EXPECT_EQ(empty.Precision(), 0.0);
  EXPECT_EQ(empty.Recall(), 0.0);
  EXPECT_EQ(empty.F1(), 0.0);
}

TEST(AccumulateTest, ExactMatchIsTruePositive) {
  std::map<std::string, FieldScore> scores;
  AccumulateSpanScores({Span("a", 0, 2)}, {Span("a", 0, 2)}, scores);
  EXPECT_EQ(scores["a"].tp, 1);
  EXPECT_EQ(scores["a"].fp, 0);
  EXPECT_EQ(scores["a"].fn, 0);
}

TEST(AccumulateTest, WrongBoundaryIsFpPlusFn) {
  std::map<std::string, FieldScore> scores;
  AccumulateSpanScores({Span("a", 0, 2)}, {Span("a", 0, 3)}, scores);
  EXPECT_EQ(scores["a"].tp, 0);
  EXPECT_EQ(scores["a"].fp, 1);
  EXPECT_EQ(scores["a"].fn, 1);
}

TEST(AccumulateTest, WrongFieldSplitsAcrossFields) {
  std::map<std::string, FieldScore> scores;
  AccumulateSpanScores({Span("a", 0, 2)}, {Span("b", 0, 2)}, scores);
  EXPECT_EQ(scores["b"].fp, 1);
  EXPECT_EQ(scores["a"].fn, 1);
}

TEST(AccumulateTest, MissedGoldIsFalseNegative) {
  std::map<std::string, FieldScore> scores;
  AccumulateSpanScores({Span("a", 0, 1), Span("b", 2, 1)}, {Span("a", 0, 1)},
                       scores);
  EXPECT_EQ(scores["a"].tp, 1);
  EXPECT_EQ(scores["b"].fn, 1);
}

// Regression for the duplicate-span F1 inflation bug: set-membership
// matching (std::find) counted a duplicated predicted span as two true
// positives against a single gold span, yielding a perfect F1. One-to-one
// matching scores it tp=1, fp=1.
TEST(AccumulateTest, DuplicatePredictionIsNotDoubleCounted) {
  std::map<std::string, FieldScore> scores;
  AccumulateSpanScores({Span("a", 0, 2)}, {Span("a", 0, 2), Span("a", 0, 2)},
                       scores);
  EXPECT_EQ(scores["a"].tp, 1);
  EXPECT_EQ(scores["a"].fp, 1);
  EXPECT_EQ(scores["a"].fn, 0);
  EXPECT_LT(scores["a"].F1(), 1.0);
}

// The symmetric direction: one prediction cannot satisfy two identical
// gold spans (std::find counted zero false negatives here).
TEST(AccumulateTest, DuplicateGoldNeedsDuplicatePredictions) {
  std::map<std::string, FieldScore> scores;
  AccumulateSpanScores({Span("a", 0, 2), Span("a", 0, 2)}, {Span("a", 0, 2)},
                       scores);
  EXPECT_EQ(scores["a"].tp, 1);
  EXPECT_EQ(scores["a"].fp, 0);
  EXPECT_EQ(scores["a"].fn, 1);
}

// ---- Shared span matcher (doc/span_match.h) -------------------------------

TEST(MatchSpansTest, ExactOneToOne) {
  SpanMatchCounts counts =
      MatchSpans({Span("a", 0, 2), Span("b", 3, 1)},
                 {Span("a", 0, 2), Span("b", 3, 1)});
  EXPECT_EQ(counts.tp, 2);
  EXPECT_EQ(counts.fp, 0);
  EXPECT_EQ(counts.fn, 0);
  EXPECT_DOUBLE_EQ(F1FromCounts(counts), 1.0);
}

TEST(MatchSpansTest, DuplicatePredictionsCountOnceEach) {
  SpanMatchCounts counts = MatchSpans(
      {Span("a", 0, 2)},
      {Span("a", 0, 2), Span("a", 0, 2), Span("a", 0, 2)});
  EXPECT_EQ(counts.tp, 1);
  EXPECT_EQ(counts.fp, 2);
  EXPECT_EQ(counts.fn, 0);
  EXPECT_NEAR(F1FromCounts(counts), 2.0 / 4.0, 1e-12);
}

TEST(MatchSpansTest, DuplicatedGoldMatchesDuplicatedPredictions) {
  SpanMatchCounts counts = MatchSpans(
      {Span("a", 0, 2), Span("a", 0, 2)}, {Span("a", 0, 2), Span("a", 0, 2)});
  EXPECT_EQ(counts.tp, 2);
  EXPECT_EQ(counts.fp, 0);
  EXPECT_EQ(counts.fn, 0);
}

TEST(MatchSpansTest, EmptySides) {
  SpanMatchCounts no_pred = MatchSpans({Span("a", 0, 1)}, {});
  EXPECT_EQ(no_pred.fn, 1);
  SpanMatchCounts no_gold = MatchSpans({}, {Span("a", 0, 1)});
  EXPECT_EQ(no_gold.fp, 1);
  SpanMatchCounts empty = MatchSpans({}, {});
  EXPECT_DOUBLE_EQ(F1FromCounts(empty), 0.0);
}

TEST(MatchSpansTest, PerFieldSplitsCounts) {
  std::map<std::string, SpanMatchCounts> counts;
  MatchSpansPerField({Span("a", 0, 1), Span("b", 2, 1)},
                     {Span("a", 0, 1), Span("a", 0, 1)}, counts);
  EXPECT_EQ(counts["a"].tp, 1);
  EXPECT_EQ(counts["a"].fp, 1);
  EXPECT_EQ(counts["b"].fn, 1);
}

TEST(FinalizeTest, MicroPoolsAllFields) {
  std::map<std::string, FieldScore> scores;
  scores["frequent"] = FieldScore{90, 5, 5};
  scores["rare"] = FieldScore{0, 1, 9};
  EvalResult result = FinalizeScores(scores);
  // micro: tp=90, fp=6, fn=14 -> 2*90 / (180 + 20)
  EXPECT_NEAR(result.micro_f1, 180.0 / 200.0, 1e-12);
}

TEST(FinalizeTest, MacroWeightsFieldsEqually) {
  std::map<std::string, FieldScore> scores;
  scores["frequent"] = FieldScore{100, 0, 0};  // F1 = 1.0
  scores["rare"] = FieldScore{0, 0, 10};       // F1 = 0.0
  EvalResult result = FinalizeScores(scores);
  EXPECT_NEAR(result.macro_f1, 0.5, 1e-12);
  EXPECT_GT(result.micro_f1, result.macro_f1)
      << "rare-field failure hurts macro more than micro";
}

TEST(FinalizeTest, EmptyScores) {
  EvalResult result = FinalizeScores({});
  EXPECT_EQ(result.macro_f1, 0.0);
  EXPECT_EQ(result.micro_f1, 0.0);
}

TEST(FinalizeTest, PerFieldPreserved) {
  std::map<std::string, FieldScore> scores;
  scores["a"] = FieldScore{1, 0, 1};
  EvalResult result = FinalizeScores(scores);
  ASSERT_EQ(result.per_field.size(), 1u);
  EXPECT_EQ(result.per_field.at("a").tp, 1);
}

}  // namespace
}  // namespace fieldswap
