// Tests for the fslint static analyzer (src/lint): lexer, layer manifest,
// rule engine, suppressions, and the engine/report layer, driven over the
// checked-in fixture files in tests/lint_fixtures/.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint/concurrency.h"
#include "lint/engine.h"
#include "lint/layers.h"
#include "lint/lexer.h"
#include "lint/rules.h"

namespace fieldswap {
namespace lint {
namespace {

std::string RepoRoot() { return FIELDSWAP_REPO_ROOT; }

std::string ReadRepoFile(const std::string& rel_path) {
  std::ifstream in(RepoRoot() + "/" + rel_path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << rel_path;
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

LayerGraph RealLayers() {
  LayerGraph layers;
  std::string error;
  EXPECT_TRUE(LayerGraph::Parse(ReadRepoFile("tools/layers.txt"), &layers,
                                &error))
      << error;
  return layers;
}

/// Lints a checked-in fixture under its real repo-relative path.
FileLintResult LintFixture(const std::string& name) {
  std::string rel = "tests/lint_fixtures/" + name;
  return LintSource(rel, ReadRepoFile(rel), nullptr);
}

std::vector<std::pair<int, std::string>> LinesAndRules(
    const FileLintResult& result) {
  std::vector<std::pair<int, std::string>> out;
  for (const Diagnostic& diag : result.diagnostics) {
    out.emplace_back(diag.line, diag.rule);
  }
  return out;
}

using Expected = std::vector<std::pair<int, std::string>>;

// ---------------------------------------------------------------- lexer --

TEST(LintLexer, BlanksCommentsButRecordsThem) {
  LexedFile lexed = LexCppSource("int a; // trailing note\nint b;\n");
  EXPECT_EQ(lexed.code.find("trailing"), std::string::npos);
  EXPECT_NE(lexed.code.find("int a;"), std::string::npos);
  ASSERT_EQ(lexed.comments.size(), 1u);
  EXPECT_EQ(lexed.comments[0].start_line, 1);
  EXPECT_NE(lexed.comments[0].text.find("trailing note"), std::string::npos);
}

TEST(LintLexer, BlanksStringAndCharLiteralContents) {
  LexedFile lexed =
      LexCppSource("const char* s = \"secret\";\nchar c = 'x';\n");
  EXPECT_EQ(lexed.code.find("secret"), std::string::npos);
  EXPECT_EQ(lexed.code.find("'x'"), std::string::npos);
  // Delimiters stay so offsets line up byte-for-byte.
  EXPECT_EQ(lexed.code.size(), std::string("const char* s = \"secret\";\n"
                                           "char c = 'x';\n")
                                   .size());
}

TEST(LintLexer, BlanksRawStringsAcrossLines) {
  LexedFile lexed = LexCppSource(
      "auto s = R\"raw(line one\nline two)raw\";\nint after = 1;\n");
  EXPECT_EQ(lexed.code.find("line one"), std::string::npos);
  EXPECT_EQ(lexed.code.find("line two"), std::string::npos);
  EXPECT_NE(lexed.code.find("int after"), std::string::npos);
  // Newlines inside the raw string survive, keeping line numbers honest.
  EXPECT_EQ(lexed.LineAt(lexed.code.find("int after")), 3);
}

TEST(LintLexer, KeepsIncludePathsVisible) {
  LexedFile lexed = LexCppSource(
      "#include \"model/trainer.h\"\nconst char* s = \"model/hidden.h\";\n");
  EXPECT_NE(lexed.code.find("model/trainer.h"), std::string::npos);
  EXPECT_EQ(lexed.code.find("model/hidden.h"), std::string::npos);
}

TEST(LintLexer, MergesAdjacentStandaloneLineComments) {
  LexedFile lexed = LexCppSource(
      "// first line of a wrapped comment\n"
      "// second line of the same comment\n"
      "int code = 1;\n"
      "\n"
      "// separate comment after a blank line\n");
  ASSERT_EQ(lexed.comments.size(), 2u);
  EXPECT_EQ(lexed.comments[0].start_line, 1);
  EXPECT_EQ(lexed.comments[0].end_line, 2);
  EXPECT_EQ(lexed.comments[1].start_line, 5);
}

// --------------------------------------------------------- layer manifest --

TEST(LayerGraph, RealManifestParsesAndEncodesDesignRules) {
  LayerGraph layers = RealLayers();
  for (const char* name :
       {"util", "obs", "par", "doc", "ocr", "nn", "lint", "synth", "attack",
        "model", "core", "eval", "serve", "api", "bench", "examples",
        "tools"}) {
    EXPECT_TRUE(layers.IsLayer(name)) << name;
  }
  // attack never sees model/core/eval (PR 3's design rule).
  EXPECT_FALSE(layers.Allowed("attack", "model"));
  EXPECT_FALSE(layers.Allowed("attack", "core"));
  EXPECT_FALSE(layers.Allowed("attack", "eval"));
  // eval sits near the top; only the api facade may include it.
  for (const std::string& layer : layers.layers()) {
    if (layer != "eval" && layer != "api") {
      EXPECT_FALSE(layers.Allowed(layer, "eval")) << layer;
    }
  }
  EXPECT_TRUE(layers.Allowed("eval", "attack"));
  EXPECT_TRUE(layers.Allowed("model", "nn"));
  // Self-includes are implicit.
  EXPECT_TRUE(layers.Allowed("doc", "doc"));
  // serve/flat is a nested byte-layout layer (ISSUE 8): serve may reach
  // it, but the container format itself may touch only util — never the
  // model, document, or parallel layers it serializes for.
  EXPECT_TRUE(layers.IsLayer("serve/flat"));
  EXPECT_TRUE(layers.Allowed("serve", "serve/flat"));
  EXPECT_TRUE(layers.Allowed("serve/flat", "util"));
  EXPECT_FALSE(layers.Allowed("serve/flat", "model"));
  EXPECT_FALSE(layers.Allowed("serve/flat", "doc"));
  EXPECT_FALSE(layers.Allowed("serve/flat", "nn"));
  EXPECT_FALSE(layers.Allowed("serve/flat", "par"));
  EXPECT_FALSE(layers.Allowed("serve/flat", "serve"))
      << "the bridge points one way: serve -> serve/flat";
  // doc/formats is the same shape one layer down (ISSUE 10): doc may
  // reach its record-file container, but the byte layer may touch only
  // util — never documents, the parallel pool, or doc itself.
  EXPECT_TRUE(layers.IsLayer("doc/formats"));
  EXPECT_TRUE(layers.Allowed("doc", "doc/formats"));
  EXPECT_TRUE(layers.Allowed("doc", "par"));
  EXPECT_TRUE(layers.Allowed("doc/formats", "util"));
  EXPECT_FALSE(layers.Allowed("doc/formats", "doc"))
      << "the bridge points one way: doc -> doc/formats";
  EXPECT_FALSE(layers.Allowed("doc/formats", "par"));
  EXPECT_FALSE(layers.Allowed("doc/formats", "obs"));
  // Outside src/, only the facade (plus serve/obs/util conveniences) is
  // reachable — internals must come through api/fieldswap_api.h or
  // api/internals.h.
  for (const char* outside : {"bench", "examples", "tools"}) {
    EXPECT_TRUE(layers.Allowed(outside, "api")) << outside;
    EXPECT_TRUE(layers.Allowed(outside, "serve")) << outside;
    EXPECT_TRUE(layers.Allowed(outside, "util")) << outside;
    EXPECT_FALSE(layers.Allowed(outside, "model")) << outside;
    EXPECT_FALSE(layers.Allowed(outside, "core")) << outside;
    EXPECT_FALSE(layers.Allowed(outside, "eval")) << outside;
    EXPECT_FALSE(layers.Allowed(outside, "attack")) << outside;
  }
}

TEST(LayerGraph, LayerForPath) {
  LayerGraph layers = RealLayers();
  EXPECT_EQ(layers.LayerForPath("src/model/trainer.cc"), "model");
  EXPECT_EQ(layers.LayerForPath("src/lint/rules.cc"), "lint");
  EXPECT_EQ(layers.LayerForPath("src/serve/server.cc"), "serve");
  // Longest-prefix resolution: the nested flat-format layer wins over its
  // parent for files under serve/flat/, and the bridge stays in serve.
  EXPECT_EQ(layers.LayerForPath("src/serve/flat/format.cc"), "serve/flat");
  EXPECT_EQ(layers.LayerForPath("src/serve/flat_snapshot.cc"), "serve");
  EXPECT_EQ(layers.LayerForPath("src/doc/formats/record_file.cc"),
            "doc/formats");
  EXPECT_EQ(layers.LayerForPath("src/doc/corpus.cc"), "doc");
  EXPECT_EQ(layers.LayerForPath("src/api/fieldswap_api.h"), "api");
  EXPECT_EQ(layers.LayerForPath("src/mystery/x.cc"), "");
  // Declared top-level directories are layers too; undeclared ones
  // (tests/) stay outside the graph.
  EXPECT_EQ(layers.LayerForPath("bench/par_scaling.cc"), "bench");
  EXPECT_EQ(layers.LayerForPath("examples/quickstart.cpp"), "examples");
  EXPECT_EQ(layers.LayerForPath("tools/fslint.cc"), "tools");
  EXPECT_EQ(layers.LayerForPath("tests/lint_test.cc"), "");
  EXPECT_EQ(layers.LayerForPath("scripts/check.sh"), "");
}

TEST(LayerGraph, RejectsMalformedManifests) {
  LayerGraph layers;
  std::string error;
  EXPECT_FALSE(LayerGraph::Parse("a: b\nb: a\n", &layers, &error));
  EXPECT_NE(error.find("cycle"), std::string::npos);
  EXPECT_FALSE(LayerGraph::Parse("a: ghost\n", &layers, &error));
  EXPECT_NE(error.find("undeclared"), std::string::npos);
  EXPECT_FALSE(LayerGraph::Parse("a:\na:\n", &layers, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos);
  EXPECT_FALSE(LayerGraph::Parse("a: a\n", &layers, &error));
  EXPECT_FALSE(LayerGraph::Parse("# only comments\n", &layers, &error));
}

// ---------------------------------------------------- rules via fixtures --

TEST(FslintRules, CatchesUnseededRngWithFileAndLine) {
  FileLintResult result = LintFixture("rng_bad.cc");
  Expected expected = {{5, "no-unseeded-rng"},
                       {6, "no-unseeded-rng"},
                       {7, "no-unseeded-rng"},
                       {8, "no-unseeded-rng"},
                       {9, "no-unseeded-rng"}};
  EXPECT_EQ(LinesAndRules(result), expected);
  EXPECT_EQ(result.diagnostics[0].file, "tests/lint_fixtures/rng_bad.cc");
}

TEST(FslintRules, CatchesWallClockReads) {
  FileLintResult result = LintFixture("wall_clock_bad.cc");
  Expected expected = {{6, "no-wall-clock"},
                       {7, "no-wall-clock"},
                       {8, "no-wall-clock"},
                       {9, "no-wall-clock"}};
  EXPECT_EQ(LinesAndRules(result), expected);
}

TEST(FslintRules, CatchesRawThreads) {
  FileLintResult result = LintFixture("thread_bad.cc");
  Expected expected = {{6, "no-raw-thread"}, {7, "no-raw-thread"}};
  EXPECT_EQ(LinesAndRules(result), expected);
}

TEST(FslintRules, CatchesUnorderedIteration) {
  FileLintResult result = LintFixture("unordered_bad.cc");
  Expected expected = {{9, "no-unordered-iteration"},
                       {12, "no-unordered-iteration"}};
  EXPECT_EQ(LinesAndRules(result), expected);
}

TEST(FslintRules, CatchesFloatLiteralEquality) {
  FileLintResult result = LintFixture("float_eq_bad.cc");
  Expected expected = {{4, "no-float-equality"},
                       {5, "no-float-equality"},
                       {6, "no-float-equality"},
                       {7, "no-float-equality"}};
  EXPECT_EQ(LinesAndRules(result), expected);
}

TEST(FslintRules, CatchesBannedFunctions) {
  FileLintResult result = LintFixture("banned_bad.cc");
  Expected expected = {{7, "banned-function"},
                       {8, "banned-function"},
                       {9, "banned-function"}};
  EXPECT_EQ(LinesAndRules(result), expected);
}

TEST(FslintRules, CatchesGuardedMemberAccessWithoutTheLock) {
  FileLintResult result = LintFixture("guarded_bad.cc");
  Expected expected = {{13, "guarded-by"},
                       {17, "guarded-by"},
                       {18, "guarded-by"}};
  EXPECT_EQ(LinesAndRules(result), expected);
  EXPECT_NE(result.diagnostics[0].message.find("FS_GUARDED_BY(mu_)"),
            std::string::npos);
  // Bump() (lock_guard held) and Reset() (FS_REQUIRES) are not flagged.
}

TEST(FslintRules, CatchesLockOrderInversionWithBothChains) {
  FileLintResult result = LintFixture("lock_order_bad.cc");
  Expected expected = {{12, "lock-order"}};
  EXPECT_EQ(LinesAndRules(result), expected);
  const std::string& message = result.diagnostics[0].message;
  EXPECT_NE(message.find("lock acquisition cycle"), std::string::npos);
  // Both chains appear, each anchored file:line at its witness.
  EXPECT_NE(message.find("chain 1: lock_order_bad::first_mu "
                         "(tests/lint_fixtures/lock_order_bad.cc:11) -> "
                         "lock_order_bad::second_mu "
                         "(tests/lint_fixtures/lock_order_bad.cc:12)"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("chain 2: lock_order_bad::second_mu "
                         "(tests/lint_fixtures/lock_order_bad.cc:16) -> "
                         "lock_order_bad::first_mu "
                         "(tests/lint_fixtures/lock_order_bad.cc:17)"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("tools/lock_order.txt"), std::string::npos);
}

TEST(FslintRules, CatchesCallbackInvokedUnderLock) {
  FileLintResult result = LintFixture("callback_bad.cc");
  Expected expected = {{12, "no-lock-across-callback"}};
  EXPECT_EQ(LinesAndRules(result), expected);
  EXPECT_NE(result.diagnostics[0].message.find("Notifier::notifier_mu_"),
            std::string::npos);
  // FireSafely (copy under lock, invoke after release) is not flagged.
}

TEST(FslintRules, JustifiedSuppressionsSilenceEachRule) {
  for (const char* fixture :
       {"rng_suppressed.cc", "wall_clock_suppressed.cc",
        "unordered_suppressed.cc", "thread_suppressed.cc",
        "float_eq_suppressed.cc", "banned_suppressed.cc",
        "guarded_suppressed.cc", "lock_order_suppressed.cc",
        "callback_suppressed.cc"}) {
    FileLintResult result = LintFixture(fixture);
    EXPECT_TRUE(result.diagnostics.empty())
        << fixture << ": " << (result.diagnostics.empty()
                                   ? ""
                                   : result.diagnostics[0].message);
    EXPECT_EQ(result.suppressions_used, 1) << fixture;
  }
}

TEST(FslintRules, UnjustifiedOrUnknownSuppressionsAreRejected) {
  FileLintResult result = LintFixture("suppression_unjustified.cc");
  Expected expected = {{5, "bad-suppression"},
                       {6, "banned-function"},
                       {7, "bad-suppression"}};
  EXPECT_EQ(LinesAndRules(result), expected);
  EXPECT_EQ(result.suppressions_used, 0);
}

TEST(FslintRules, LexerKeepsStringsAndCommentsFromTriggering) {
  FileLintResult result = LintFixture("lexer_clean.cc");
  EXPECT_TRUE(result.diagnostics.empty())
      << result.diagnostics[0].rule << ": " << result.diagnostics[0].message;
  EXPECT_EQ(result.suppressions_used, 0);
}

TEST(FslintRules, WallClockAllowedOnlyInObsParBench) {
  const std::string content = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(LintSource("src/obs/x.cc", content, nullptr)
                  .diagnostics.empty());
  EXPECT_TRUE(LintSource("src/par/x.cc", content, nullptr)
                  .diagnostics.empty());
  EXPECT_TRUE(LintSource("bench/x.cc", content, nullptr)
                  .diagnostics.empty());
  EXPECT_EQ(LintSource("src/model/x.cc", content, nullptr)
                .diagnostics.size(),
            1u);
  EXPECT_EQ(LintSource("examples/x.cpp", content, nullptr)
                .diagnostics.size(),
            1u);
}

// ----------------------------------------------------------------- layering --

TEST(FslintLayering, BackEdgeFixtureIsCaughtWithFileAndLine) {
  LayerGraph layers = RealLayers();
  std::string rel = "tests/lint_fixtures/layering_backedge.cc";
  FileLintResult result = LintSource("src/attack/layering_backedge.cc",
                                     ReadRepoFile(rel), &layers);
  Expected expected = {{6, "layering"}, {7, "layering"}};
  EXPECT_EQ(LinesAndRules(result), expected);
  EXPECT_NE(result.diagnostics[0].message.find("model"), std::string::npos);
  EXPECT_NE(result.diagnostics[1].message.find("eval"), std::string::npos);
}

TEST(FslintLayering, AllowedEdgesAndUndeclaredDirsPass) {
  LayerGraph layers = RealLayers();
  const std::string content =
      "#include \"attack/ladder.h\"\n#include \"model/trainer.h\"\n";
  // eval may include both attack and model.
  EXPECT_TRUE(LintSource("src/eval/x.cc", content, &layers)
                  .diagnostics.empty());
  // tests/ is not declared in the manifest, so it is not layer-checked.
  EXPECT_TRUE(LintSource("tests/x.cc", content, &layers)
                  .diagnostics.empty());
}

TEST(FslintLayering, BenchAndExamplesMustGoThroughTheFacade) {
  LayerGraph layers = RealLayers();
  // Direct internal includes from declared top-level dirs are back-edges.
  const std::string internal =
      "#include \"attack/ladder.h\"\n#include \"model/trainer.h\"\n";
  Expected expected = {{1, "layering"}, {2, "layering"}};
  EXPECT_EQ(LinesAndRules(LintSource("bench/x.cc", internal, &layers)),
            expected);
  EXPECT_EQ(LinesAndRules(LintSource("examples/x.cpp", internal, &layers)),
            expected);
  EXPECT_EQ(LinesAndRules(LintSource("tools/x.cc", internal, &layers)),
            expected);
  // The sanctioned surface passes: api facade, serve, obs, util.
  const std::string sanctioned =
      "#include \"api/fieldswap_api.h\"\n"
      "#include \"serve/server.h\"\n"
      "#include \"obs/metrics.h\"\n"
      "#include \"util/table.h\"\n";
  EXPECT_TRUE(LintSource("bench/x.cc", sanctioned, &layers)
                  .diagnostics.empty());
  EXPECT_TRUE(LintSource("examples/x.cpp", sanctioned, &layers)
                  .diagnostics.empty());
  // Local includes without a slash (bench_util.h) are never layer edges.
  EXPECT_TRUE(LintSource("bench/x.cc", "#include \"bench_util.h\"\n",
                         &layers)
                  .diagnostics.empty());
}

TEST(FslintLayering, UndeclaredSrcSubsystemIsReported) {
  LayerGraph layers = RealLayers();
  FileLintResult result =
      LintSource("src/mystery/x.cc", "int a = 1;\n", &layers);
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "layering");
  EXPECT_NE(result.diagnostics[0].message.find("mystery"),
            std::string::npos);
}

// ------------------------------------------------------------- concurrency --

TEST(FslintConcurrency, RequiresAnnotationSeedsTheHeldLock) {
  const std::string content =
      "class Q {\n"
      " public:\n"
      "  void DrainLocked() FS_REQUIRES(mu_) { pending_ = 0; }\n"
      "  void Broken() { pending_ = 0; }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int pending_ FS_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  FileLintResult result = LintSource("src/serve/q.h", content, nullptr);
  Expected expected = {{4, "guarded-by"}};
  EXPECT_EQ(LinesAndRules(result), expected);
}

TEST(FslintConcurrency, OutOfLineDefinitionInheritsMethodAnnotations) {
  const std::string content =
      "class W {\n"
      " public:\n"
      "  void Tick() FS_REQUIRES(mu_);\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int beats_ FS_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "void W::Tick() { ++beats_; }\n";
  FileLintResult result = LintSource("src/obs/w.cc", content, nullptr);
  EXPECT_TRUE(result.diagnostics.empty())
      << result.diagnostics[0].message;
}

TEST(FslintConcurrency, ExcludesCallUnderTheLockIsSelfDeadlock) {
  const std::string content =
      "class S {\n"
      " public:\n"
      "  void Poke() FS_EXCLUDES(mu_);\n"
      "  void Loop() {\n"
      "    std::lock_guard<std::mutex> lock(mu_);\n"
      "    Poke();\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "};\n";
  FileLintResult result = LintSource("src/core/s.h", content, nullptr);
  Expected expected = {{6, "lock-order"}};
  EXPECT_EQ(LinesAndRules(result), expected);
  EXPECT_NE(result.diagnostics[0].message.find("self-deadlock"),
            std::string::npos);
}

TEST(LockOrderManifestTest, RealManifestDeclaresTheCanonicalEdges) {
  LockOrderManifest manifest;
  std::string error;
  ASSERT_TRUE(manifest.Parse(ReadRepoFile("tools/lock_order.txt"), &error))
      << error;
  EXPECT_TRUE(manifest.Allows("ThreadPool::run_mu_", "ThreadPool::mu_"));
  EXPECT_TRUE(manifest.Allows("MultiTenantServer::mu_", "ModelRegistry::mu_"));
  EXPECT_TRUE(manifest.Allows("parallel::PoolMutex()", "ThreadPool::mu_"));
  // Direction matters: the reverse orders are not blessed.
  EXPECT_FALSE(manifest.Allows("ThreadPool::mu_", "ThreadPool::run_mu_"));
  EXPECT_FALSE(manifest.Allows("ModelRegistry::mu_", "MultiTenantServer::mu_"));
}

TEST(LockOrderManifestTest, RejectsCyclesAndMalformedLines) {
  LockOrderManifest manifest;
  std::string error;
  // A manifest cycle would bless the deadlock the rule prevents.
  EXPECT_FALSE(manifest.Parse("A -> B\nB -> A\n", &error));
  EXPECT_NE(error.find("cycle"), std::string::npos);
  EXPECT_FALSE(manifest.Parse("A B\n", &error));
  EXPECT_NE(error.find("expected"), std::string::npos);
  EXPECT_FALSE(manifest.Parse("A -> A\n", &error));
  EXPECT_NE(error.find("malformed"), std::string::npos);
  // Comments and blank lines are fine.
  EXPECT_TRUE(manifest.Parse("# comment\n\nA -> B # trailing\n", &error))
      << error;
  EXPECT_TRUE(manifest.Allows("A", "B"));
}

// ------------------------------------------------------------------ engine --

TEST(FslintEngine, FixturesAreExcludedByDefaultButScannableOnDemand) {
  LintConfig config;
  config.root = RepoRoot();
  LintReport excluded = LintPaths(config, {"tests/lint_fixtures"});
  EXPECT_EQ(excluded.files_scanned, 0);

  config.exclude_substrings.clear();
  LintReport report = LintPaths(config, {"tests/lint_fixtures"});
  EXPECT_GE(report.files_scanned, 15);
  EXPECT_FALSE(report.clean());
  EXPECT_GT(report.violations_by_rule.at("no-unseeded-rng"), 0);
  EXPECT_GT(report.suppressions_used, 0);

  std::string text = RenderText(report);
  EXPECT_NE(text.find("rng_bad.cc:5: error[no-unseeded-rng]"),
            std::string::npos);
  std::string json = RenderJson(report);
  EXPECT_NE(json.find("\"violations\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"no-unseeded-rng\""), std::string::npos);
}

TEST(FslintEngine, TheRealTreeLintsClean) {
  LayerGraph layers = RealLayers();
  LintConfig config;
  config.root = RepoRoot();
  config.layers = &layers;
  LintReport report =
      LintPaths(config, {"src", "bench", "examples", "tests", "tools"});
  EXPECT_GT(report.files_scanned, 100);
  std::string text;
  if (!report.clean()) text = RenderText(report);
  EXPECT_TRUE(report.clean()) << text;
  // The whole-tree nested-acquisition graph is non-empty, and staying
  // clean above means every src/ edge is declared in tools/lock_order.txt
  // (manifest conformance is on by default when the file exists).
  EXPECT_NE(std::find(report.observed_lock_edges.begin(),
                      report.observed_lock_edges.end(),
                      "ThreadPool::run_mu_ -> ThreadPool::mu_"),
            report.observed_lock_edges.end());
}

}  // namespace
}  // namespace lint
}  // namespace fieldswap
