// Unit tests for the src/attack perturbation harness: identity and
// determinism contracts, per-attack behaviour, and the severity-ladder
// report plumbing.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "attack/ladder.h"
#include "attack/perturbation.h"
#include "doc/serialize.h"
#include "par/parallel.h"
#include "util/hash.h"
#include "synth/domains.h"
#include "synth/generator.h"

namespace fieldswap {
namespace attack {
namespace {

std::vector<Document> TestCorpus(int n = 6, uint64_t seed = 404) {
  return GenerateCorpus(EarningsSpec(), n, seed, "atk");
}

std::vector<std::string> CorpusJson(const std::vector<Document>& docs) {
  std::vector<std::string> out;
  for (const Document& doc : docs) out.push_back(DocumentToJson(doc));
  return out;
}

/// Multiset of annotated (field, value text) pairs — the ground truth an
/// attack must never corrupt.
std::multiset<std::pair<std::string, std::string>> GoldValues(
    const Document& doc) {
  std::multiset<std::pair<std::string, std::string>> values;
  for (const EntitySpan& span : doc.annotations()) {
    values.emplace(span.field, doc.TextOf(span));
  }
  return values;
}

int TotalTokens(const std::vector<Document>& docs) {
  int total = 0;
  for (const Document& doc : docs) total += doc.num_tokens();
  return total;
}

TEST(AttackTest, EveryAttackIsIdentityAtSeverityZero) {
  std::vector<Document> docs = TestCorpus();
  std::vector<std::string> before = CorpusJson(docs);
  for (const auto& attack : BuildAttackSuite(EarningsSpec())) {
    std::vector<Document> out = PerturbCorpus(docs, *attack, 0.0, 99);
    EXPECT_EQ(CorpusJson(out), before) << attack->name();
  }
}

TEST(AttackTest, SeverityIsClampedToUnitInterval) {
  std::vector<Document> docs = TestCorpus(3);
  auto attack = MakeKeyPhraseSynonymAttack(EarningsSpec());
  // -1 clamps to 0 (identity), 7 clamps to 1 (same stream as severity 1).
  EXPECT_EQ(CorpusJson(PerturbCorpus(docs, *attack, -1.0, 5)),
            CorpusJson(docs));
  EXPECT_EQ(CorpusJson(PerturbCorpus(docs, *attack, 7.0, 5)),
            CorpusJson(PerturbCorpus(docs, *attack, 1.0, 5)));
}

TEST(AttackTest, PerturbCorpusIsDeterministicAcrossThreadCounts) {
  std::vector<Document> docs = TestCorpus(8);
  int restore = par::Threads();
  for (const auto& attack : BuildAttackSuite(EarningsSpec())) {
    par::SetThreads(1);
    std::vector<std::string> serial =
        CorpusJson(PerturbCorpus(docs, *attack, 0.7, 1234));
    par::SetThreads(4);
    std::vector<std::string> parallel =
        CorpusJson(PerturbCorpus(docs, *attack, 0.7, 1234));
    EXPECT_EQ(serial, parallel) << attack->name();
  }
  par::SetThreads(restore);
}

TEST(AttackTest, DifferentSeedsGiveDifferentPerturbations) {
  std::vector<Document> docs = TestCorpus(8);
  auto attack = MakeKeyPhraseSynonymAttack(EarningsSpec());
  EXPECT_NE(CorpusJson(PerturbCorpus(docs, *attack, 0.8, 1)),
            CorpusJson(PerturbCorpus(docs, *attack, 0.8, 2)));
}

TEST(AttackTest, SynonymAttackRewritesKeyPhrasesButNotValues) {
  std::vector<Document> docs = TestCorpus(8);
  std::vector<Document> out =
      PerturbCorpus(docs, *MakeKeyPhraseSynonymAttack(EarningsSpec()), 1.0, 3);
  ASSERT_EQ(out.size(), docs.size());
  int changed = 0;
  for (size_t i = 0; i < docs.size(); ++i) {
    if (!out[i].SameTokenTexts(docs[i])) ++changed;
    EXPECT_EQ(GoldValues(out[i]), GoldValues(docs[i])) << docs[i].id();
  }
  EXPECT_GT(changed, 0) << "severity-1 synonym attack touched no document";
}

TEST(AttackTest, DeletionAttackRemovesTokensAndKeepsAnnotationsValid) {
  std::vector<Document> docs = TestCorpus(8);
  std::vector<Document> out =
      PerturbCorpus(docs, *MakeKeyPhraseDeletionAttack(EarningsSpec()), 1.0, 3);
  EXPECT_LT(TotalTokens(out), TotalTokens(docs));
  for (const Document& doc : out) {
    EXPECT_GE(doc.num_tokens(), 1);
    for (const EntitySpan& span : doc.annotations()) {
      EXPECT_GE(span.first_token, 0);
      EXPECT_LE(span.end_token(), doc.num_tokens());
    }
    // Values survive verbatim: deletion only removes label tokens.
    EXPECT_EQ(GoldValues(doc).size(), doc.annotations().size());
  }
}

TEST(AttackTest, DistractorInjectionAddsUnannotatedTokens) {
  std::vector<Document> docs = TestCorpus(6);
  std::vector<Document> out = PerturbCorpus(
      docs, *MakeDistractorInjectionAttack(EarningsSpec()), 1.0, 3);
  EXPECT_GT(TotalTokens(out), TotalTokens(docs));
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(GoldValues(out[i]), GoldValues(docs[i]));
  }
}

TEST(AttackTest, BoxJitterKeepsTextAndNormalizedBoxes) {
  std::vector<Document> docs = TestCorpus(6);
  std::vector<Document> out =
      PerturbCorpus(docs, *MakeBoxJitterAttack(), 1.0, 3);
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_TRUE(out[i].SameTokenTexts(docs[i]));
    for (const Token& tok : out[i].tokens()) {
      EXPECT_LE(tok.box.x_min, tok.box.x_max);
      EXPECT_LE(tok.box.y_min, tok.box.y_max);
    }
  }
}

TEST(AttackTest, FieldPositionPermutationMovesLinesAsBlocks) {
  std::vector<Document> docs = TestCorpus(6);
  std::vector<Document> out =
      PerturbCorpus(docs, *MakeFieldPositionPermutationAttack(), 1.0, 3);
  bool any_moved = false;
  for (size_t i = 0; i < docs.size(); ++i) {
    // Token order and texts are untouched; only vertical geometry moves.
    EXPECT_TRUE(out[i].SameTokenTexts(docs[i]));
    EXPECT_EQ(out[i].annotations(), docs[i].annotations());
    for (int t = 0; t < docs[i].num_tokens(); ++t) {
      if (out[i].token(t).box.y_min != docs[i].token(t).box.y_min) {
        any_moved = true;
      }
      EXPECT_DOUBLE_EQ(out[i].token(t).box.x_min, docs[i].token(t).box.x_min);
    }
  }
  EXPECT_TRUE(any_moved);
}

TEST(AttackTest, ComposedPerturbationAppliesPartsInOrder) {
  std::vector<Document> docs = TestCorpus(5);
  DomainSpec spec = EarningsSpec();

  AttackSuite parts;
  parts.push_back(MakeKeyPhraseDeletionAttack(spec));
  parts.push_back(MakeDistractorInjectionAttack(spec));
  auto composed = MakeComposedPerturbation("delete_then_inject",
                                           std::move(parts));
  EXPECT_EQ(composed->name(), "delete_then_inject");

  // Reproduce by hand with the same per-doc rng stream: the composed
  // attack must equal delete-then-inject under one shared rng.
  std::vector<Document> got = PerturbCorpus(docs, *composed, 0.9, 77);
  auto del = MakeKeyPhraseDeletionAttack(spec);
  auto inject = MakeDistractorInjectionAttack(spec);
  Rng master(77 ^ Fnv1a64(composed->name()));
  std::vector<Rng> rngs;
  for (size_t i = 0; i < docs.size(); ++i) rngs.push_back(master.Split(i));
  for (size_t i = 0; i < docs.size(); ++i) {
    Document expect = docs[i];
    del->Apply(expect, 0.9, rngs[i]);
    inject->Apply(expect, 0.9, rngs[i]);
    EXPECT_EQ(DocumentToJson(got[i]), DocumentToJson(expect));
  }
}

TEST(AttackTest, BuildAttackSuiteCoversTheTaxonomy) {
  AttackSuite suite = BuildAttackSuite(EarningsSpec());
  std::vector<std::string> names;
  for (const auto& attack : suite) names.push_back(attack->name());
  EXPECT_EQ(names, (std::vector<std::string>{
                       "keyphrase_synonym", "keyphrase_delete", "ocr_noise",
                       "box_jitter", "line_shuffle", "distractor_inject",
                       "field_position_permute"}));
}

// ---- Ladder ---------------------------------------------------------------

/// Fake evaluator: "F1" is a deterministic function of corpus text, so
/// perturbation registers as degradation without training a model.
AttackEval FakeEval(const std::vector<Document>& docs) {
  size_t hash = 0;
  int tokens = 0;
  for (const Document& doc : docs) {
    tokens += doc.num_tokens();
    for (const Token& tok : doc.tokens()) {
      hash = hash * 131 + std::hash<std::string>{}(tok.text);
    }
  }
  AttackEval eval;
  eval.macro_f1 = 0.5 + 0.5 * (static_cast<double>(hash % 997) / 997.0);
  eval.micro_f1 = eval.macro_f1;
  eval.per_field_f1["gross_pay"] = eval.macro_f1;
  eval.per_field_f1["pay_date"] = eval.macro_f1 / 2;
  (void)tokens;
  return eval;
}

TEST(LadderTest, ReportCoversEveryAttackAndSeverity) {
  std::vector<Document> docs = TestCorpus(4);
  AttackSuite suite = BuildAttackSuite(EarningsSpec());
  AttackLadderConfig config;
  config.severities = {0.0, 0.5, 1.0};
  DegradationReport report =
      RunAttackLadder(docs, suite, config, FakeEval, "earnings");

  EXPECT_EQ(report.domain, "earnings");
  ASSERT_EQ(report.curves.size(), suite.size());
  for (size_t i = 0; i < suite.size(); ++i) {
    const AttackCurve& curve = report.curves[i];
    EXPECT_EQ(curve.attack, suite[i]->name());
    ASSERT_EQ(curve.cells.size(), config.severities.size());
    for (size_t c = 0; c < curve.cells.size(); ++c) {
      EXPECT_EQ(curve.cells[c].severity, config.severities[c]);
    }
    // Severity 0 is the identity, so its rung equals the clean eval.
    EXPECT_EQ(curve.cells[0].eval.macro_f1, report.clean.macro_f1);
    EXPECT_GE(curve.MaxMacroDrop(report.clean.macro_f1), 0.0);
  }
  EXPECT_NE(report.Find("ocr_noise"), nullptr);
  EXPECT_EQ(report.Find("no_such_attack"), nullptr);
}

TEST(LadderTest, ReportRendersTextAndStableJson) {
  std::vector<Document> docs = TestCorpus(3);
  AttackSuite suite;
  suite.push_back(MakeBoxJitterAttack());
  AttackLadderConfig config;
  config.severities = {0.5};
  DegradationReport report =
      RunAttackLadder(docs, suite, config, FakeEval, "earnings");

  std::string text = ReportToText(report);
  EXPECT_NE(text.find("box_jitter"), std::string::npos);
  EXPECT_NE(text.find("macro_f1"), std::string::npos);

  std::string json = ReportToJson(report);
  EXPECT_NE(json.find("\"domain\": \"earnings\""), std::string::npos);
  EXPECT_NE(json.find("\"attack\": \"box_jitter\""), std::string::npos);
  EXPECT_NE(json.find("\"per_field_f1\""), std::string::npos);
  // Rendering twice gives the same bytes (the golden suite depends on it).
  EXPECT_EQ(json, ReportToJson(report));
}

TEST(LadderTest, F1ByFieldTypeAveragesWithinType) {
  DomainSchema schema(
      "t", {FieldSpec{"a", FieldType::kMoney}, FieldSpec{"b", FieldType::kMoney},
            FieldSpec{"c", FieldType::kDate}});
  AttackEval eval;
  eval.per_field_f1["a"] = 0.2;
  eval.per_field_f1["b"] = 0.4;
  eval.per_field_f1["c"] = 0.9;
  eval.per_field_f1["unknown"] = 1.0;  // not in schema: skipped
  std::map<std::string, double> by_type = F1ByFieldType(eval, schema);
  ASSERT_EQ(by_type.size(), 2u);
  EXPECT_NEAR(by_type.at("money"), 0.3, 1e-12);
  EXPECT_NEAR(by_type.at("date"), 0.9, 1e-12);
}

}  // namespace
}  // namespace attack
}  // namespace fieldswap
