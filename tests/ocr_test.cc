#include <gtest/gtest.h>

#include "doc/document.h"
#include "ocr/line_detector.h"
#include "ocr/noise.h"
#include "ocr/reading_order.h"
#include "util/rng.h"

namespace fieldswap {
namespace {

Document GridDoc() {
  // Layout (y grows downward):
  //   row 0: "Pay" "Date"          |  gap  |  "01/15/2024"
  //   row 1: "Total"  "$5.00"
  Document doc("g", "test", 612, 792);
  doc.AddToken("Pay", BBox{10, 0, 30, 10});
  doc.AddToken("Date", BBox{34, 0, 60, 10});
  doc.AddToken("01/15/2024", BBox{200, 0, 260, 10});
  doc.AddToken("Total", BBox{10, 30, 40, 40});
  doc.AddToken("$5.00", BBox{46, 30, 76, 40});
  return doc;
}

TEST(LineDetectorTest, GroupsByBandAndSplitsAtGaps) {
  Document doc = GridDoc();
  std::vector<Line> lines = DetectLines(doc);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].token_indices, (std::vector<int>{0, 1}));
  EXPECT_EQ(lines[1].token_indices, (std::vector<int>{2}));
  EXPECT_EQ(lines[2].token_indices, (std::vector<int>{3, 4}));
}

TEST(LineDetectorTest, LinesOrderedTopToBottom) {
  Document doc = GridDoc();
  std::vector<Line> lines = DetectLines(doc);
  for (size_t i = 1; i < lines.size(); ++i) {
    EXPECT_LE(lines[i - 1].box.CenterY(), lines[i].box.CenterY());
  }
}

TEST(LineDetectorTest, SmallGapStaysOneLine) {
  Document doc("g", "test", 612, 792);
  doc.AddToken("Amount", BBox{0, 0, 40, 10});
  doc.AddToken("Due", BBox{45, 0, 65, 10});  // 5pt gap < 2 * 10pt height
  std::vector<Line> lines = DetectLines(doc);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].token_indices.size(), 2u);
}

TEST(LineDetectorTest, GapFactorControlsSplitting) {
  Document doc("g", "test", 612, 792);
  doc.AddToken("a", BBox{0, 0, 10, 10});
  doc.AddToken("b", BBox{25, 0, 35, 10});  // 15pt gap
  LineDetectorOptions tight;
  tight.gap_factor = 1.0;  // threshold 10pt -> split
  EXPECT_EQ(DetectLines(doc, tight).size(), 2u);
  LineDetectorOptions loose;
  loose.gap_factor = 2.0;  // threshold 20pt -> one line
  EXPECT_EQ(DetectLines(doc, loose).size(), 1u);
}

TEST(LineDetectorTest, StaggeredTokensSameBand) {
  Document doc("g", "test", 612, 792);
  doc.AddToken("a", BBox{0, 0, 10, 10});
  doc.AddToken("b", BBox{12, 3, 22, 13});  // 70% overlap with a
  EXPECT_EQ(DetectLines(doc).size(), 1u);
}

TEST(LineDetectorTest, AssignsLineIds) {
  Document doc = GridDoc();
  DetectAndAssignLines(doc);
  EXPECT_EQ(doc.token(0).line, doc.token(1).line);
  EXPECT_NE(doc.token(0).line, doc.token(2).line);
  EXPECT_EQ(doc.token(3).line, doc.token(4).line);
}

TEST(LineDetectorTest, EmptyDocument) {
  Document doc("e", "test", 612, 792);
  EXPECT_TRUE(DetectLines(doc).empty());
}

// ---- Reading order --------------------------------------------------------

TEST(ReadingOrderTest, SortsTopToBottomLeftToRight) {
  Document doc("r", "test", 612, 792);
  // Emit intentionally out of order.
  doc.AddToken("second", BBox{10, 30, 50, 40});
  doc.AddToken("first", BBox{10, 0, 50, 10});
  doc.AddToken("first-right", BBox{60, 0, 100, 10});
  DetectAndAssignLines(doc);
  SortReadingOrder(doc);
  EXPECT_EQ(doc.token(0).text, "first");
  EXPECT_EQ(doc.token(1).text, "first-right");
  EXPECT_EQ(doc.token(2).text, "second");
}

TEST(ReadingOrderTest, RemapsAnnotations) {
  Document doc("r", "test", 612, 792);
  doc.AddToken("below", BBox{10, 30, 50, 40});
  doc.AddToken("value", BBox{10, 0, 40, 10});
  doc.AddToken("tokens", BBox{44, 0, 80, 10});
  doc.AddAnnotation(EntitySpan{"f", 1, 2});
  DetectAndAssignLines(doc);
  SortReadingOrder(doc);
  ASSERT_EQ(doc.annotations().size(), 1u);
  EXPECT_EQ(doc.annotations()[0].first_token, 0);
  EXPECT_EQ(doc.annotations()[0].num_tokens, 2);
  EXPECT_EQ(doc.TextOf(doc.annotations()[0]), "value tokens");
}

TEST(ReadingOrderTest, IdempotentOnSortedDoc) {
  Document doc("r", "test", 612, 792);
  doc.AddToken("a", BBox{0, 0, 10, 10});
  doc.AddToken("b", BBox{20, 0, 30, 10});
  DetectAndAssignLines(doc);
  SortReadingOrder(doc);
  std::vector<std::string> before;
  for (const Token& t : doc.tokens()) before.push_back(t.text);
  SortReadingOrder(doc);
  std::vector<std::string> after;
  for (const Token& t : doc.tokens()) after.push_back(t.text);
  EXPECT_EQ(before, after);
}

// ---- OCR noise ------------------------------------------------------------

Document NoiseDoc() {
  Document doc("n", "test", 612, 792);
  doc.AddToken("Overtime", BBox{0, 0, 50, 10});
  doc.AddToken("$100.00", BBox{60, 0, 100, 10});
  doc.AddAnnotation(EntitySpan{"f", 1, 1});
  DetectAndAssignLines(doc);
  return doc;
}

TEST(OcrNoiseTest, ZeroNoiseIsIdentity) {
  Document doc = NoiseDoc();
  Document original = doc;
  Rng rng(1);
  ApplyOcrNoise(doc, OcrNoiseOptions{}, rng);
  EXPECT_TRUE(doc.SameTokenTexts(original));
  EXPECT_EQ(doc.token(0).box, original.token(0).box);
}

TEST(OcrNoiseTest, NeverTouchesAnnotatedTokens) {
  OcrNoiseOptions noisy;
  noisy.char_substitution_prob = 1.0;
  noisy.token_split_prob = 1.0;
  noisy.box_jitter_frac = 0.5;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Document doc = NoiseDoc();
    Rng rng(seed);
    ApplyOcrNoise(doc, noisy, rng);
    ASSERT_EQ(doc.annotations().size(), 1u);
    EXPECT_EQ(doc.TextOf(doc.annotations()[0]), "$100.00");
  }
}

TEST(OcrNoiseTest, CharSubstitutionChangesText) {
  Document doc = NoiseDoc();
  OcrNoiseOptions noisy;
  noisy.char_substitution_prob = 1.0;
  Rng rng(2);
  ApplyOcrNoise(doc, noisy, rng);
  // 'O', 'e', 'm' in "Overtime" all have confusions.
  EXPECT_NE(doc.token(0).text, "Overtime");
  EXPECT_EQ(doc.num_tokens(), 2);
}

TEST(OcrNoiseTest, TokenSplitIncreasesTokenCount) {
  Document doc = NoiseDoc();
  OcrNoiseOptions noisy;
  noisy.token_split_prob = 1.0;
  Rng rng(3);
  ApplyOcrNoise(doc, noisy, rng);
  EXPECT_EQ(doc.num_tokens(), 3);  // only the unannotated token splits
}

TEST(OcrNoiseTest, DeterministicInSeed) {
  OcrNoiseOptions noisy;
  noisy.char_substitution_prob = 0.3;
  noisy.box_jitter_frac = 0.1;
  Document a = NoiseDoc();
  Document b = NoiseDoc();
  Rng ra(42), rb(42);
  ApplyOcrNoise(a, noisy, ra);
  ApplyOcrNoise(b, noisy, rb);
  EXPECT_TRUE(a.SameTokenTexts(b));
  EXPECT_EQ(a.token(0).box, b.token(0).box);
}

TEST(OcrNoiseTest, JitterKeepsBoxesValid) {
  Document doc = NoiseDoc();
  OcrNoiseOptions noisy;
  noisy.box_jitter_frac = 2.0;  // extreme jitter
  Rng rng(4);
  ApplyOcrNoise(doc, noisy, rng);
  for (const Token& tok : doc.tokens()) {
    EXPECT_LE(tok.box.x_min, tok.box.x_max);
    EXPECT_LE(tok.box.y_min, tok.box.y_max);
  }
}

}  // namespace
}  // namespace fieldswap
