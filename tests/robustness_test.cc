// The paper's robustness claim, made testable by the attack harness:
// a FieldSwap-augmented model should degrade no more than the unaugmented
// baseline under key-phrase substitution — augmentation trains on exactly
// the key-phrase variation the synonym attack injects at eval time.
//
// Asserted at a coarse tolerance: these are small models on small corpora,
// so individual F1 numbers are noisy, but the *relative* degradation
// ordering is the paper's qualitative claim.

#include <gtest/gtest.h>

#include "attack/ladder.h"
#include "attack/perturbation.h"
#include "eval/experiment.h"
#include "synth/domains.h"

namespace fieldswap {
namespace {

ExperimentConfig RobustnessConfig() {
  ExperimentConfig config;
  config.train_sizes = {10};
  config.num_subsets = 1;
  config.num_trials = 1;
  config.test_size = 25;
  config.min_steps = 900;
  config.steps_per_doc = 1;
  return config;
}

TEST(RobustnessTest, AttackedEvalArmProducesFullReports) {
  ExperimentConfig config = RobustnessConfig();
  config.min_steps = 200;
  ExperimentRunner runner(FaraSpec(), config, nullptr);

  attack::AttackSuite suite;
  suite.push_back(attack::MakeKeyPhraseSynonymAttack(runner.spec()));
  attack::AttackLadderConfig ladder;
  ladder.severities = {0.0, 1.0};

  std::vector<AttackedEvalArm> arms = RunAttackedEval(
      runner, {BaselineSetting()}, suite, ladder, /*train_size=*/6);
  ASSERT_EQ(arms.size(), 1u);
  EXPECT_EQ(arms[0].setting_label, "baseline");
  ASSERT_EQ(arms[0].report.curves.size(), 1u);
  ASSERT_EQ(arms[0].report.curves[0].cells.size(), 2u);
  // Severity 0 equals the clean eval (identity contract through the whole
  // train-attack-evaluate stack).
  EXPECT_EQ(arms[0].report.curves[0].cells[0].eval.macro_f1,
            arms[0].report.clean.macro_f1);
}

TEST(RobustnessTest, FieldSwapDegradesNoMoreThanBaselineUnderSynonymAttack) {
  // Earnings has rich phrase vocabularies, so the synonym attack has real
  // surface to rewrite and the human-expert mapping needs no candidate
  // model (keeps the test self-contained).
  ExperimentRunner runner(EarningsSpec(), RobustnessConfig(), nullptr);

  attack::AttackSuite suite;
  suite.push_back(attack::MakeKeyPhraseSynonymAttack(runner.spec()));
  attack::AttackLadderConfig ladder;
  ladder.severities = {1.0};

  std::vector<AttackedEvalArm> arms = RunAttackedEval(
      runner,
      {BaselineSetting(), FieldSwapSetting(MappingStrategy::kHumanExpert)},
      suite, ladder, /*train_size=*/10);
  ASSERT_EQ(arms.size(), 2u);

  const attack::DegradationReport& baseline = arms[0].report;
  const attack::DegradationReport& fieldswap = arms[1].report;
  double baseline_drop =
      baseline.curves[0].MaxMacroDrop(baseline.clean.macro_f1);
  double fieldswap_drop =
      fieldswap.curves[0].MaxMacroDrop(fieldswap.clean.macro_f1);

  // Coarse tolerance (in absolute macro-F1): the claim is about ordering,
  // not exact margins, and tiny models are noisy.
  const double kTolerance = 0.08;
  EXPECT_LE(fieldswap_drop, baseline_drop + kTolerance)
      << "FieldSwap-augmented model lost more F1 under the synonym attack "
         "than the baseline (baseline drop "
      << baseline_drop << ", fieldswap drop " << fieldswap_drop << ")";
}

}  // namespace
}  // namespace fieldswap
