// Regenerates Table II of the paper: number of fields of each base type per
// document type. These counts are structural properties of the domain specs
// and match the paper exactly (verified against generated corpora).

#include <iostream>
#include <map>
#include <set>

#include "bench_util.h"
#include "api/fieldswap_api.h"
#include "util/table.h"

namespace fieldswap {
namespace {

void Run() {
  PrintBanner("Table II: Fields per base type",
              "e.g. Earnings = 2 address / 3 date / 15 money / 0 number / "
              "3 string");

  TablePrinter table(
      {"Document Type", "Address", "Date", "Money", "Number", "String"});
  for (const DomainSpec& spec : AllEvalDomains()) {
    auto counts = spec.Schema().CountByType();
    table.AddRow({spec.name, std::to_string(counts[FieldType::kAddress]),
                  std::to_string(counts[FieldType::kDate]),
                  std::to_string(counts[FieldType::kMoney]),
                  std::to_string(counts[FieldType::kNumber]),
                  std::to_string(counts[FieldType::kString])});
  }
  table.Print(std::cout);

  // Cross-check: every schema field actually occurs in generated data.
  std::cout << "\nCross-check against generated corpora (every schema field "
               "must appear):\n";
  for (const DomainSpec& spec : AllEvalDomains()) {
    auto docs = GenerateCorpus(spec, 400, 99, spec.name);
    std::set<std::string> seen;
    for (const Document& doc : docs) {
      for (const EntitySpan& span : doc.annotations()) seen.insert(span.field);
    }
    std::cout << "  " << spec.name << ": " << seen.size() << "/"
              << spec.Schema().num_fields() << " fields realized in 400 docs\n";
  }
}

}  // namespace
}  // namespace fieldswap

int main() {
  fieldswap::Run();
  return 0;
}
