// Augmentation-method comparison supporting the paper's Sec. I claim that
// conventional text augmentation (EDA: synonym replacement / random swap /
// random deletion) and simple synthetic value generation are NOT effective
// for form extraction, while key-phrase-targeted FieldSwap is.
//
// Also measures the name-derived ("LLM-style") key phrase source — the
// paper's future-work question of replacing the human expert with phrase
// suggestions generated from field names alone.

#include <iostream>

#include "bench_util.h"
#include "api/internals.h"
#include "util/strings.h"
#include "util/table.h"

namespace fieldswap {
namespace {

void Run() {
  PrintBanner("Ablation: augmentation baselines (Earnings)",
              "EDA / value-swap roughly neutral; FieldSwap clearly positive "
              "(the paper's Sec. I motivation)");

  CandidateScoringModel candidate_model = BenchCandidateModel();
  ExperimentConfig config = BenchConfig(/*default_subsets=*/1,
                                        /*default_trials=*/1);
  config.train_sizes = {10, 50};
  DomainSpec spec = EarningsSpec();
  ExperimentRunner runner(spec, config, &candidate_model);

  TablePrinter table(
      {"augmentation", "macro@10", "micro@10", "macro@50", "micro@50"});

  // Baseline and FieldSwap variants via the standard runner.
  for (ExperimentSetting setting :
       {BaselineSetting(), FieldSwapSetting(MappingStrategy::kTypeToType),
        FieldSwapSetting(MappingStrategy::kHumanExpert)}) {
    LearningCurve curve = runner.Run(setting);
    table.AddRow({curve.setting_label,
                  FormatDouble(curve.by_size.at(10).macro_f1_mean, 1),
                  FormatDouble(curve.by_size.at(10).micro_f1_mean, 1),
                  FormatDouble(curve.by_size.at(50).macro_f1_mean, 1),
                  FormatDouble(curve.by_size.at(50).micro_f1_mean, 1)});
  }

  // Name-derived phrases ("LLM-style" expert): measure suggestion quality
  // directly — the fraction of fields whose name-derived phrases include a
  // true key phrase, with zero access to documents.
  {
    KeyPhraseConfig suggested = SuggestKeyPhraseConfig(
        spec.Schema(), {"employee_name", "employer_name", "employee_address",
                        "employer_address"});
    int hits = 0, fields = 0;
    for (const FieldDef& def : spec.fields) {
      if (def.phrases.empty()) continue;
      ++fields;
      auto it = suggested.find(def.spec.name);
      if (it == suggested.end()) continue;
      bool match = false;
      for (const KeyPhrase& phrase : it->second) {
        for (const std::string& truth : def.phrases) {
          if (EqualsIgnoreCase(phrase.Text(), truth)) match = true;
        }
      }
      if (match) ++hits;
    }
    std::cout << "Name-derived phrase suggestion covers " << hits << "/"
              << fields
              << " phrase-bearing Earnings fields with a true key phrase "
                 "(zero training data).\n\n";
  }

  // EDA and value-swap: identical trainer, synthetic pool swapped out.
  // (Uses the runner's corpora indirectly by regenerating the same seeds.)
  table.Print(std::cout);
  std::cout << "\nEDA / value-swap comparison (1 subset, 1 trial, same "
               "protocol):\n";

  TablePrinter table2(
      {"augmentation", "macro@10", "micro@10", "macro@50", "micro@50"});
  for (const char* kind : {"eda", "value-swap"}) {
    std::vector<std::string> cells{std::string("augment: ") + kind};
    for (int size : {10, 50}) {
      // Rebuild the subset exactly as ExperimentRunner does (same seed
      // formula) so numbers are comparable.
      auto originals = GenerateCorpus(spec, spec.train_pool_size,
                                      config.seed, spec.name + "-train");
      Rng rng(config.seed + 7919 * static_cast<uint64_t>(size) + 104729 * 0);
      auto picks = rng.SampleWithoutReplacement(originals.size(),
                                                static_cast<size_t>(size));
      std::vector<Document> subset;
      for (size_t p : picks) subset.push_back(originals[p]);

      std::vector<Document> synthetics;
      if (std::string(kind) == "eda") {
        EdaOptions options;
        synthetics = GenerateEdaAugmentations(subset, options);
      } else {
        ValueSwapOptions options;
        synthetics =
            GenerateValueSwapAugmentations(subset, spec.Schema(), options);
      }

      SequenceModelConfig model_config = config.model;
      model_config.seed = config.seed + 1;
      SequenceLabelingModel model(model_config, spec.Schema());
      TrainOptions train = config.train;
      train.total_steps =
          std::max(config.min_steps, config.steps_per_doc * size);
      train.seed = model_config.seed ^ 0x5eed;
      TrainSequenceModel(model, subset, synthetics, train);
      EvalResult eval = EvaluateModel(model, runner.test_docs());
      cells.push_back(FormatDouble(eval.macro_f1 * 100, 1));
      cells.push_back(FormatDouble(eval.micro_f1 * 100, 1));
    }
    table2.AddRow(cells);
  }
  table2.Print(std::cout);
  std::cout << "\nExpected: EDA/value-swap land near the baseline row above "
               "(token edits don't teach key-phrase anchoring), while "
               "FieldSwap rows improve on it.\n";
}

}  // namespace
}  // namespace fieldswap

int main() {
  fieldswap::Run();
  return 0;
}
