// Kernel-backend benchmark (ISSUE 7 / ROADMAP item 1): measures the
// runtime-dispatched SIMD kernels and the graph-free serving forward
// against the seed's scalar serving path, single-threaded.
//
// Three sections:
//   1. backend inventory — which kernels this host dispatches to;
//   2. micro-kernels — GEMM / LayerNorm / neighbor-attention, scalar vs
//      every other available backend, on serving-shaped operands;
//   3. the serve pipeline — encode + predict over a generated corpus:
//      scalar graph forward (the pre-kernel baseline), graph-free forward
//      on the best backend, and the int8-quantized plan.
//
// The headline gauge fieldswap.kernel.bench.encode_predict.speedup is the
// acceptance number: >= 4x on an AVX2 host (on a scalar-only host it
// reports the tape-removal speedup alone, which is well under 4x — the
// gate compares like hosts via BENCH_<n>.json, it never compares across
// ISAs). The model config is sized so GEMMs dominate the way they do at
// production scale (override with FIELDSWAP_KERNEL_BENCH_*); the seed's
// tiny default config would measure tokenization, not kernels.
//
// All pipeline legs run with par::SetThreads(1): the speedup reported here
// is vectorization + tape removal + quantization, never core count.

#include <chrono>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "api/fieldswap_api.h"
#include "api/internals.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

namespace fieldswap {
namespace {

double WallSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int EnvInt(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return ParseInt(raw, fallback);
}

/// Deterministic pseudo-random fill so every backend times identical data.
void FillMatrix(Matrix& m, uint64_t seed) {
  Rng rng(seed);
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) {
      m.At(r, c) = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
    }
  }
}

bool SameSpans(const std::vector<EntitySpan>& a,
               const std::vector<EntitySpan>& b) {
  return a == b;
}

void MicroKernels(TablePrinter& table) {
  const int m = EnvInt("FIELDSWAP_KERNEL_BENCH_GEMM_M", 256);
  const int k = EnvInt("FIELDSWAP_KERNEL_BENCH_GEMM_K", 96);
  const int n = EnvInt("FIELDSWAP_KERNEL_BENCH_GEMM_N", 96);
  const int reps = EnvInt("FIELDSWAP_KERNEL_BENCH_MICRO_REPS", 200);

  Matrix a(m, k), b(k, n), out(m, n);
  FillMatrix(a, 101);
  FillMatrix(b, 202);
  Matrix x(m, k), gain(1, k), bias(1, k), normed(m, k);
  FillMatrix(x, 303);
  FillMatrix(gain, 404);
  FillMatrix(bias, 505);
  // Neighbor lists shaped like the model's: ~12 neighbors per row.
  std::vector<std::vector<int>> neighbors(m);
  for (int r = 0; r < m; ++r) {
    for (int j = -6; j <= 6; ++j) {
      int idx = r + j;
      if (idx >= 0 && idx < m) neighbors[r].push_back(idx);
    }
  }
  Matrix q(m, k), key(m, k), v(m, k), attn(m, k);
  FillMatrix(q, 606);
  FillMatrix(key, 707);
  FillMatrix(v, 808);

  struct Micro {
    const char* name;
    std::function<void()> run;
  };
  const Micro micros[] = {
      {"gemm", [&] { MatMulInto(a, b, out); }},
      {"layer_norm", [&] { LayerNormInto(x, gain, bias, normed); }},
      {"attention", [&] { NeighborAttentionInto(q, key, v, neighbors, attn); }},
  };

  const std::vector<std::string> backends = nn::AvailableKernelBackends();
  for (const Micro& micro : micros) {
    nn::SetKernelBackend("scalar");
    micro.run();  // warm caches before any timed leg
    double scalar_s = WallSeconds([&] {
      for (int i = 0; i < reps; ++i) micro.run();
    });
    obs::GaugeSet(std::string("fieldswap.kernel.bench.") + micro.name +
                      ".scalar_s",
                  scalar_s);
    for (const std::string& backend : backends) {
      if (backend == "scalar") continue;
      nn::SetKernelBackend(backend);
      micro.run();
      double backend_s = WallSeconds([&] {
        for (int i = 0; i < reps; ++i) micro.run();
      });
      double speedup = backend_s > 0 ? scalar_s / backend_s : 0;
      obs::GaugeSet(std::string("fieldswap.kernel.bench.") + micro.name +
                        ".simd_s",
                    backend_s);
      obs::GaugeSet(std::string("fieldswap.kernel.bench.") + micro.name +
                        ".speedup",
                    speedup);
      table.AddRow({std::string(micro.name) + " (" + backend + ")",
                    FormatDouble(scalar_s * 1e3 / reps, 3),
                    FormatDouble(backend_s * 1e3 / reps, 3),
                    FormatDouble(speedup, 2) + "x"});
    }
  }
  nn::SetKernelBackend("auto");
}

void Run() {
  PrintBanner("Kernel ops (SIMD backends + int8 serving)",
              "graph-free SIMD serving >= 4x the scalar graph baseline on "
              "an AVX2 host; spans agree across paths");

  const std::vector<std::string> backends = nn::AvailableKernelBackends();
  std::cout << "available backends:";
  for (const std::string& b : backends) std::cout << " " << b;
  std::cout << "  (auto-dispatch picks " << backends.front() << ")\n\n";

  // Single-thread everywhere: this bench isolates per-core kernel speed.
  par::SetThreads(1);

  std::cout << "-- micro-kernels (per-call ms, scalar vs SIMD) --\n";
  TablePrinter micro_table({"kernel", "scalar ms", "simd ms", "speedup"});
  MicroKernels(micro_table);
  if (backends.size() > 1) {
    micro_table.Print(std::cout);
  } else {
    std::cout << "(scalar is the only backend on this host; "
                 "micro comparison skipped)\n";
  }

  // Serving pipeline: encode + predict, sized so GEMMs dominate.
  SequenceModelConfig config;
  config.d_model = EnvInt("FIELDSWAP_KERNEL_BENCH_DMODEL", 96);
  config.num_layers = EnvInt("FIELDSWAP_KERNEL_BENCH_LAYERS", 2);
  const int docs_count = EnvInt("FIELDSWAP_KERNEL_BENCH_DOCS", 24);
  const int reps = EnvInt("FIELDSWAP_KERNEL_BENCH_REPS", 3);
  std::cout << "\n-- serve pipeline: encode+predict, single thread "
            << "(d_model=" << config.d_model
            << ", layers=" << config.num_layers << ", docs=" << docs_count
            << ", reps=" << reps << ") --\n";

  DomainSpec spec = EarningsSpec();
  std::vector<Document> corpus = GenerateCorpus(spec, docs_count, 42, "kb");
  SequenceLabelingModel model(config, spec.Schema());

  // Encode is tokenization + neighbor search — it never touches the kernel
  // layer, so one timing serves every leg's total.
  std::vector<EncodedDoc> encoded;
  double encode_s = WallSeconds([&] {
    for (int rep = 0; rep < reps; ++rep) {
      encoded.clear();
      for (const Document& doc : corpus) {
        encoded.push_back(model.EncodeDoc(doc));
      }
    }
  });

  // Baseline: the seed's serving path — autodiff graph forward + decode on
  // the scalar reference backend.
  std::vector<std::vector<EntitySpan>> base_spans(encoded.size());
  nn::SetKernelBackend("scalar");
  double graph_scalar_s = WallSeconds([&] {
    for (int rep = 0; rep < reps; ++rep) {
      for (size_t i = 0; i < encoded.size(); ++i) {
        base_spans[i] = model.PredictEncodedGraph(encoded[i]);
      }
    }
  });

  // Contract check: graph and graph-free forwards must decode identically
  // within a backend (bit-identical logits).
  bool scalar_bitwise = true;
  for (size_t i = 0; i < encoded.size(); ++i) {
    scalar_bitwise =
        scalar_bitwise && SameSpans(base_spans[i],
                                    model.PredictEncoded(encoded[i]));
  }

  // Kernel path: graph-free forward on the best backend this host has.
  std::vector<std::vector<EntitySpan>> kernel_spans(encoded.size());
  nn::SetKernelBackend(backends.front());
  double kernel_s = WallSeconds([&] {
    for (int rep = 0; rep < reps; ++rep) {
      for (size_t i = 0; i < encoded.size(); ++i) {
        kernel_spans[i] = model.PredictEncoded(encoded[i]);
      }
    }
  });

  // Int8 path: quantize once (the snapshot-build cost), then serve.
  Int8Plan plan;
  double quantize_s = WallSeconds([&] { plan = model.MakeInt8Plan(); });
  std::vector<std::vector<EntitySpan>> int8_spans(encoded.size());
  double int8_s = WallSeconds([&] {
    for (int rep = 0; rep < reps; ++rep) {
      for (size_t i = 0; i < encoded.size(); ++i) {
        int8_spans[i] = model.PredictEncodedInt8(plan, encoded[i]);
      }
    }
  });
  nn::SetKernelBackend("auto");

  int kernel_agree = 0, int8_agree = 0;
  for (size_t i = 0; i < encoded.size(); ++i) {
    kernel_agree += SameSpans(base_spans[i], kernel_spans[i]) ? 1 : 0;
    int8_agree += SameSpans(base_spans[i], int8_spans[i]) ? 1 : 0;
  }

  auto total = [&](double predict_s) { return encode_s + predict_s; };
  double speedup = total(kernel_s) > 0 ? total(graph_scalar_s) /
                                             total(kernel_s)
                                       : 0;
  double int8_speedup =
      total(int8_s) > 0 ? total(graph_scalar_s) / total(int8_s) : 0;

  obs::GaugeSet("fieldswap.kernel.bench.pipeline.encode_s", encode_s);
  obs::GaugeSet("fieldswap.kernel.bench.pipeline.graph_scalar_s",
                graph_scalar_s);
  obs::GaugeSet("fieldswap.kernel.bench.pipeline.kernel_s", kernel_s);
  obs::GaugeSet("fieldswap.kernel.bench.pipeline.int8_s", int8_s);
  obs::GaugeSet("fieldswap.kernel.bench.pipeline.quantize_s", quantize_s);
  obs::GaugeSet("fieldswap.kernel.bench.encode_predict.speedup", speedup);
  obs::GaugeSet("fieldswap.kernel.bench.encode_predict.int8_speedup",
                int8_speedup);
  double per_doc = reps * static_cast<double>(corpus.size());
  obs::GaugeSet("fieldswap.kernel.bench.pipeline.docs_per_s",
                total(kernel_s) > 0 ? per_doc / total(kernel_s) : 0);

  TablePrinter table({"serving path", "encode+predict s", "speedup",
                      "spans agree"});
  table.AddRow({"graph forward, scalar (baseline)",
                FormatDouble(total(graph_scalar_s), 3), "1.00x",
                scalar_bitwise ? "yes (bitwise)" : "NO"});
  table.AddRow({"graph-free, " + backends.front(),
                FormatDouble(total(kernel_s), 3),
                FormatDouble(speedup, 2) + "x",
                std::to_string(kernel_agree) + "/" +
                    std::to_string(encoded.size())});
  table.AddRow({"graph-free int8, " + backends.front(),
                FormatDouble(total(int8_s), 3),
                FormatDouble(int8_speedup, 2) + "x",
                std::to_string(int8_agree) + "/" +
                    std::to_string(encoded.size())});
  table.Print(std::cout);

  std::cout << "\nquantize-at-snapshot cost: "
            << FormatDouble(quantize_s * 1e3, 2) << " ms (once per swap)\n"
            << "acceptance: encode_predict.speedup >= 4x on an AVX2 host "
            << "(got " << FormatDouble(speedup, 2) << "x on "
            << backends.front() << ")\n";
}

}  // namespace
}  // namespace fieldswap

int main() {
  fieldswap::Run();
  return 0;
}
