// Regenerates Table I of the paper: dataset statistics per document type.
//
// The corpora are synthetic stand-ins (see DESIGN.md); pool and test sizes
// are configured to match the paper exactly, and this bench additionally
// reports measured corpus characteristics (tokens/doc, annotations/doc)
// from actually generating the pools.

#include <iostream>

#include "bench_util.h"
#include "api/fieldswap_api.h"
#include "util/strings.h"
#include "util/table.h"

namespace fieldswap {
namespace {

void Run() {
  PrintBanner("Table I: Dataset Statistics",
              "FARA 6/200/300, FCC 13/200/300, Brokerage 18/294/186, "
              "Earnings 23/2000/1847, Loan 35/2000/815");

  TablePrinter table({"Document Type", "# Fields", "Train Docs Pool Size",
                      "Test Docs", "Avg Tokens/Doc", "Avg Instances/Doc",
                      "Templates"});
  for (const DomainSpec& spec : AllEvalDomains()) {
    // Sample a slice of the pool to measure document characteristics.
    int sample = std::min(spec.train_pool_size, 120);
    auto docs = GenerateCorpus(spec, sample, 1234, spec.name);
    double tokens = 0, instances = 0;
    for (const Document& doc : docs) {
      tokens += doc.num_tokens();
      instances += static_cast<double>(doc.annotations().size());
    }
    tokens /= sample;
    instances /= sample;
    table.AddRow({spec.name, std::to_string(spec.Schema().num_fields()),
                  std::to_string(spec.train_pool_size),
                  std::to_string(spec.test_size), FormatDouble(tokens, 1),
                  FormatDouble(instances, 1),
                  std::to_string(spec.num_templates)});
  }
  table.Print(std::cout);
  std::cout << "\nPool/test sizes match Table I by construction; tokens and\n"
               "instances per document are measured from generated corpora.\n";
}

}  // namespace
}  // namespace fieldswap

int main() {
  fieldswap::Run();
  return 0;
}
