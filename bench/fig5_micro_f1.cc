// Regenerates Fig. 5 of the paper: mean Micro-F1 learning curves on the
// same grid as Fig. 4.
//
// Paper shape to reproduce: the same ordering of settings persists under
// micro-F1, but the gains are smaller than under macro-F1 — evidence that
// the largest improvements come from rare fields (which macro weights
// equally and micro down-weights).

#include <iostream>

#include "bench_util.h"
#include "util/strings.h"
#include "util/table.h"

namespace fieldswap {
namespace {

void Run() {
  PrintBanner("Fig. 5: Mean Micro-F1 learning curves",
              "same ordering as Fig. 4 with smaller gains (paper: Earnings "
              "+2-5 micro vs +4-11 macro)");

  CandidateScoringModel candidate_model = BenchCandidateModel();
  // Micro-F1 moves less between settings, and this grid re-trains the same
  // protocol as Fig. 4 — default to one subset to keep the default bench
  // pass quick (raise FIELDSWAP_SUBSETS / FIELDSWAP_TRIALS for more).
  ExperimentConfig config = BenchConfig(/*default_subsets=*/1,
                                        /*default_trials=*/1);

  for (const DomainSpec& spec : AllEvalDomains()) {
    std::cout << "--- domain: " << spec.name << " ---\n";
    ExperimentRunner runner(spec, config, &candidate_model);

    std::vector<ExperimentSetting> settings = {
        BaselineSetting(),
        FieldSwapSetting(MappingStrategy::kFieldToField),
        FieldSwapSetting(MappingStrategy::kTypeToType),
    };
    if (spec.name == "earnings" || spec.name == "loan_payments") {
      settings.push_back(FieldSwapSetting(MappingStrategy::kHumanExpert));
    }

    TablePrinter table({"setting", "@10", "@50", "@100"});
    LearningCurve baseline_curve;
    for (const ExperimentSetting& setting : settings) {
      LearningCurve curve = runner.Run(setting);
      if (!setting.augmentation.has_value()) baseline_curve = curve;
      std::vector<std::string> row{curve.setting_label};
      for (int size : config.train_sizes) {
        const PointResult& point = curve.by_size.at(size);
        std::string cell = FormatDouble(point.micro_f1_mean, 1);
        if (setting.augmentation.has_value() &&
            baseline_curve.by_size.count(size)) {
          double delta = point.micro_f1_mean -
                         baseline_curve.by_size.at(size).micro_f1_mean;
          cell += (delta >= 0 ? " [+" : " [") + FormatDouble(delta, 1) + "]";
        }
        row.push_back(cell);
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Micro-F1 pools all spans; compare the bracketed deltas with "
               "Fig. 4's to see the rare-field effect.\n";
}

}  // namespace
}  // namespace fieldswap

int main() {
  fieldswap::Run();
  return 0;
}
