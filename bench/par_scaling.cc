// Parallel-scaling benchmark of the three hot paths wired through src/par:
// synthetic corpus generation, document pre-encoding, and eval prediction.
// Each path runs serially (threads=1) and on the pool (FIELDSWAP_THREADS
// or hardware concurrency), verifies the outputs are bit-identical, and
// reports the wall-clock speedup. Timings and speedups land in the
// par_scaling.metrics.json sidecar via fieldswap.par.bench.* gauges.
//
// Speedup is bounded by the cores the container exposes; on a single-core
// box every path reports ~1.0x while "identical" must still read yes --
// that column is the determinism contract, not a performance number.

#include <chrono>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "api/fieldswap_api.h"
#include "util/hash.h"
#include "util/strings.h"
#include "util/table.h"

namespace fieldswap {
namespace {

double WallSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

uint64_t CorpusChecksum(const std::vector<Document>& docs) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const Document& doc : docs) {
    hash = hash * 31 + Fnv1a64(DocumentToJson(doc));
  }
  return hash;
}

void Run() {
  PrintBanner("Parallel scaling (src/par hot paths)",
              "bit-identical outputs at every thread count; speedup bounded "
              "by physical cores");

  const int parallel_threads = par::Threads();
  const int docs_count = EnvInt("FIELDSWAP_PAR_BENCH_DOCS", 60);
  obs::GaugeSet("fieldswap.par.bench.threads", parallel_threads);
  std::cout << "threads=" << parallel_threads
            << " (serial baseline uses threads=1), corpus size=" << docs_count
            << "\n\n";

  DomainSpec spec = EarningsSpec();
  TablePrinter table(
      {"hot path", "serial s", "parallel s", "speedup", "identical"});

  auto report = [&](const std::string& name, double serial_s,
                    double parallel_s, bool identical) {
    double speedup = parallel_s > 0 ? serial_s / parallel_s : 0;
    obs::GaugeSet("fieldswap.par.bench." + name + ".serial_s", serial_s);
    obs::GaugeSet("fieldswap.par.bench." + name + ".parallel_s", parallel_s);
    obs::GaugeSet("fieldswap.par.bench." + name + ".speedup", speedup);
    table.AddRow({name, FormatDouble(serial_s, 3), FormatDouble(parallel_s, 3),
                  FormatDouble(speedup, 2) + "x", identical ? "yes" : "NO"});
  };

  // 1. Synthetic corpus generation.
  std::vector<Document> corpus_serial, corpus_parallel;
  par::SetThreads(1);
  double gen_serial = WallSeconds(
      [&] { corpus_serial = GenerateCorpus(spec, docs_count, 42, "par"); });
  par::SetThreads(parallel_threads);
  double gen_parallel = WallSeconds(
      [&] { corpus_parallel = GenerateCorpus(spec, docs_count, 42, "par"); });
  report("generate_corpus", gen_serial, gen_parallel,
         CorpusChecksum(corpus_serial) == CorpusChecksum(corpus_parallel));
  // Corpus-generation rate for the BENCH_<n>.json trajectory (docs/sec on
  // the pooled configuration).
  obs::GaugeSet("fieldswap.par.bench.generate_corpus.docs_per_s",
                gen_parallel > 0 ? docs_count / gen_parallel : 0);

  // 2. Document pre-encoding (the TrainSequenceModel encode-pools path).
  SequenceModelConfig model_config;
  SequenceLabelingModel model(model_config, spec.Schema());
  std::vector<EncodedDoc> enc_serial, enc_parallel;
  par::SetThreads(1);
  double enc_serial_s = WallSeconds([&] {
    enc_serial = par::ParallelMap(corpus_serial.size(), [&](size_t i) {
      return model.EncodeDoc(corpus_serial[i]);
    });
  });
  par::SetThreads(parallel_threads);
  double enc_parallel_s = WallSeconds([&] {
    enc_parallel = par::ParallelMap(corpus_serial.size(), [&](size_t i) {
      return model.EncodeDoc(corpus_serial[i]);
    });
  });
  bool enc_same = enc_serial.size() == enc_parallel.size();
  for (size_t i = 0; enc_same && i < enc_serial.size(); ++i) {
    enc_same = enc_serial[i].text_ids == enc_parallel[i].text_ids &&
               enc_serial[i].labels == enc_parallel[i].labels;
  }
  report("encode_pools", enc_serial_s, enc_parallel_s, enc_same);

  // 3. Eval prediction (EvaluateModel / MicroF1OnDocs path).
  double f1_serial = 0, f1_parallel = 0;
  par::SetThreads(1);
  double pred_serial_s =
      WallSeconds([&] { f1_serial = MicroF1OnDocs(model, corpus_serial); });
  par::SetThreads(parallel_threads);
  double pred_parallel_s =
      WallSeconds([&] { f1_parallel = MicroF1OnDocs(model, corpus_serial); });
  report("eval_predict", pred_serial_s, pred_parallel_s,
         f1_serial == f1_parallel);

  table.Print(std::cout);
  std::cout << "\nSpeedup is bounded by the cores this machine exposes; "
               "identical=yes is the determinism contract.\n";
}

}  // namespace
}  // namespace fieldswap

int main() {
  fieldswap::Run();
  return 0;
}
