// Google-benchmark microbenchmarks of the core operations: document
// generation, OCR line detection, neighbor queries, phrase search, the
// FieldSwap swap itself, sparsemax, attention forward/backward, and
// candidate encoding. These quantify the cost of the augmentation pipeline
// relative to model training (augmentation is cheap; training dominates).

#include <benchmark/benchmark.h>

#include "api/internals.h"
#include "bench_util.h"
#include "obs/metrics.h"

namespace fieldswap {
namespace {

/// "BM_Sparsemax/24" -> "BM_Sparsemax_24": kernel names become metric-name
/// safe tokens under fieldswap.bench.micro.*.
std::string KernelSlug(const std::string& name) {
  std::string slug;
  for (char c : name) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9')) {
      slug.push_back(c);
    } else if (!slug.empty() && slug.back() != '_') {
      slug.push_back('_');
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

/// Console output as usual, plus one gauge pair per kernel so the timings
/// land in the micro_ops sidecar and the BENCH_<n>.json trajectory.
class SidecarReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      std::string slug = KernelSlug(run.benchmark_name());
      obs::GaugeSet("fieldswap.bench.micro." + slug + ".real_ns",
                    run.GetAdjustedRealTime());
      obs::GaugeSet("fieldswap.bench.micro." + slug + ".cpu_ns",
                    run.GetAdjustedCPUTime());
    }
    ConsoleReporter::ReportRuns(reports);
  }
};

const Document& EarningsDoc() {
  static const Document* doc = new Document(
      GenerateDocument(EarningsSpec(), "bench", 0, Rng(1)));
  return *doc;
}

void BM_GenerateDocument(benchmark::State& state) {
  DomainSpec spec = EarningsSpec();
  uint64_t seed = 0;
  for (auto _ : state) {
    Document doc = GenerateDocument(spec, "b", 0, Rng(seed++));
    benchmark::DoNotOptimize(doc.num_tokens());
  }
}
BENCHMARK(BM_GenerateDocument);

void BM_DetectLines(benchmark::State& state) {
  Document doc = EarningsDoc();
  for (auto _ : state) {
    auto lines = DetectLines(doc);
    benchmark::DoNotOptimize(lines.size());
  }
}
BENCHMARK(BM_DetectLines);

void BM_NeighborIndices(benchmark::State& state) {
  const Document& doc = EarningsDoc();
  const BBox& anchor = doc.token(doc.num_tokens() / 2).box;
  for (auto _ : state) {
    auto neighbors = doc.NeighborIndices(anchor, 20);
    benchmark::DoNotOptimize(neighbors.size());
  }
}
BENCHMARK(BM_NeighborIndices);

void BM_FindPhrase(benchmark::State& state) {
  const Document& doc = EarningsDoc();
  std::vector<std::string> phrase{"Base", "Salary"};
  for (auto _ : state) {
    auto matches = doc.FindPhrase(phrase);
    benchmark::DoNotOptimize(matches.size());
  }
}
BENCHMARK(BM_FindPhrase);

void BM_SwapOnce(benchmark::State& state) {
  DomainSpec spec = EarningsSpec();
  HumanExpertConfig expert = MakeHumanExpertConfig(spec);
  // Find a document where the swap applies.
  Document doc = GenerateDocument(spec, "b", 0, Rng(7));
  KeyPhrase target;
  target.words = {"Bonus"};
  FieldSwapOptions options;
  for (auto _ : state) {
    auto synthetic = SwapOnce(doc, "current.salary", "current.bonus", target,
                              expert.phrases, options);
    benchmark::DoNotOptimize(synthetic.has_value());
  }
}
BENCHMARK(BM_SwapOnce);

void BM_GenerateCandidates(benchmark::State& state) {
  const Document& doc = EarningsDoc();
  for (auto _ : state) {
    auto candidates = GenerateCandidates(doc);
    benchmark::DoNotOptimize(candidates.size());
  }
}
BENCHMARK(BM_GenerateCandidates);

void BM_Sparsemax(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> z(static_cast<size_t>(state.range(0)));
  for (double& v : z) v = rng.Uniform(-1, 1);
  for (auto _ : state) {
    auto p = Sparsemax(z, 8.0);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_Sparsemax)->Arg(24)->Arg(128);

void BM_NeighborAttentionForward(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  const int d = 32;
  Rng rng(4);
  Var q = Constant(Matrix::Gaussian(t, d, 1.0f, rng));
  Var k = Constant(Matrix::Gaussian(t, d, 1.0f, rng));
  Var v = Constant(Matrix::Gaussian(t, d, 1.0f, rng));
  std::vector<std::vector<int>> neighbors(static_cast<size_t>(t));
  for (int i = 0; i < t; ++i) {
    for (int j = std::max(0, i - 6); j < std::min(t, i + 6); ++j) {
      neighbors[static_cast<size_t>(i)].push_back(j);
    }
  }
  for (auto _ : state) {
    Var out = NeighborAttention(q, k, v, neighbors);
    benchmark::DoNotOptimize(out->value.data());
  }
}
BENCHMARK(BM_NeighborAttentionForward)->Arg(64)->Arg(160);

void BM_NeighborAttentionBackward(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  const int d = 32;
  Rng rng(5);
  std::vector<std::vector<int>> neighbors(static_cast<size_t>(t));
  for (int i = 0; i < t; ++i) {
    for (int j = std::max(0, i - 6); j < std::min(t, i + 6); ++j) {
      neighbors[static_cast<size_t>(i)].push_back(j);
    }
  }
  for (auto _ : state) {
    Var q = Parameter(Matrix::Gaussian(t, d, 1.0f, rng));
    Var k = Parameter(Matrix::Gaussian(t, d, 1.0f, rng));
    Var v = Parameter(Matrix::Gaussian(t, d, 1.0f, rng));
    Var loss = MeanAll(NeighborAttention(q, k, v, neighbors));
    Backward(loss);
    benchmark::DoNotOptimize(q->grad.data());
  }
}
BENCHMARK(BM_NeighborAttentionBackward)->Arg(160);

void BM_CandidateEncode(benchmark::State& state) {
  CandidateModelConfig config;
  CandidateScoringModel model(config, {"f"});
  const Document& doc = EarningsDoc();
  Candidate cand =
      CandidateFromSpan(doc.annotations().back(), FieldType::kMoney);
  for (auto _ : state) {
    CandidateEncoding enc = model.Encode(doc, cand);
    benchmark::DoNotOptimize(enc.neighborhood.data());
  }
}
BENCHMARK(BM_CandidateEncode);

void BM_FullAugmentationHumanExpert(benchmark::State& state) {
  DomainSpec spec = EarningsSpec();
  auto docs = GenerateCorpus(spec, 10, 11, "aug");
  HumanExpertConfig expert = MakeHumanExpertConfig(spec);
  DomainSchema schema = spec.Schema();
  FieldSwapOptions options;
  for (auto _ : state) {
    auto synthetics = GenerateSyntheticDocuments(
        docs, expert.phrases, expert.pairs, options);
    benchmark::DoNotOptimize(synthetics.size());
  }
}
BENCHMARK(BM_FullAugmentationHumanExpert);

}  // namespace
}  // namespace fieldswap

// Custom main (instead of benchmark_main) so the run is wrapped in the
// standard bench banner/sidecar machinery: kernel timings are published as
// fieldswap.bench.micro.<kernel>.{real,cpu}_ns gauges and the at-exit hook
// writes micro_ops_kernel_timings.metrics.json for tools/bench_trajectory.
int main(int argc, char** argv) {
  fieldswap::PrintBanner("Micro ops kernel timings",
                         "augmentation ops are cheap relative to training; "
                         "encode/predict kernels dominate serving");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  fieldswap::SidecarReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
