// Ablation over field-pair mapping strategies (Sec. II-B of the paper):
// field-to-field vs type-to-type vs all-to-all on the Earnings domain.
//
// Paper claim to reproduce: "we also considered swapping between any pair
// of fields, but found that this was nearly always worse than type-to-type
// swaps" — all-to-all relabels e.g. a date instance as a money field, which
// produces systematically impossible synthetics.

#include <iostream>

#include "bench_util.h"
#include "util/strings.h"
#include "util/table.h"

namespace fieldswap {
namespace {

void Run() {
  PrintBanner("Ablation: field-pair mapping strategies (Earnings)",
              "all-to-all < type-to-type; t2t > f2f at 10 docs, f2f "
              "competitive at 50+");

  CandidateScoringModel candidate_model = BenchCandidateModel();
  ExperimentConfig config = BenchConfig(/*default_subsets=*/1,
                                        /*default_trials=*/1);
  config.train_sizes = {10, 50};
  ExperimentRunner runner(EarningsSpec(), config, &candidate_model);

  std::vector<ExperimentSetting> settings = {
      BaselineSetting(),
      FieldSwapSetting(MappingStrategy::kFieldToField),
      FieldSwapSetting(MappingStrategy::kTypeToType),
      FieldSwapSetting(MappingStrategy::kAllToAll),
  };

  TablePrinter table({"setting", "macro@10", "macro@50", "micro@10",
                      "micro@50", "synthetics@50"});
  for (const ExperimentSetting& setting : settings) {
    LearningCurve curve = runner.Run(setting);
    table.AddRow({curve.setting_label,
                  FormatDouble(curve.by_size.at(10).macro_f1_mean, 1),
                  FormatDouble(curve.by_size.at(50).macro_f1_mean, 1),
                  FormatDouble(curve.by_size.at(10).micro_f1_mean, 1),
                  FormatDouble(curve.by_size.at(50).micro_f1_mean, 1),
                  FormatDouble(curve.by_size.at(50).avg_synthetics, 0)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace fieldswap

int main() {
  fieldswap::Run();
  return 0;
}
