// Serving throughput: the batched ExtractionServer against the sequential
// per-document Predict baseline, on a repeat-heavy request trace (the
// serving workload FieldSwap targets — the same form templates arriving
// again and again). The server wins twice: encode/predict batches fan out
// across the par pool, and repeated documents collapse into encoded-doc /
// result cache hits. Payloads are FS_CHECKed bit-identical to the baseline
// at every thread count and batch size before any timing is reported.
//
// On a single-core container the pool adds nothing, so the speedup column
// is carried by the caches; with real cores both effects stack.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "api/fieldswap_api.h"
#include "bench_util.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table.h"

namespace fieldswap {
namespace {

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[rank];
}

void Run() {
  PrintBanner("Serving throughput (batched ExtractionServer)",
              ">=3x over sequential per-doc Predict on repeat traffic at 8 "
              "threads; payloads bit-identical at every configuration");

  const int unique_docs = EnvInt("FIELDSWAP_SERVE_BENCH_DOCS", 12);
  const int trace_len = EnvInt("FIELDSWAP_SERVE_BENCH_TRACE", 96);
  const int train_steps = EnvInt("FIELDSWAP_SERVE_BENCH_STEPS", 60);
  const int max_batch = EnvInt("FIELDSWAP_SERVE_BENCH_BATCH", 16);

  DomainSpec spec = InvoicesSpec();
  std::vector<Document> corpus =
      GenerateCorpus(spec, unique_docs, /*seed=*/404, "serve-bench");

  // A repeat-heavy trace: trace_len requests cycling over unique_docs
  // documents, the shape of production traffic where a handful of form
  // templates dominate.
  std::vector<Document> trace;
  trace.reserve(static_cast<size_t>(trace_len));
  for (int i = 0; i < trace_len; ++i) {
    trace.push_back(corpus[static_cast<size_t>(i) % corpus.size()]);
  }
  std::cout << "trace: " << trace_len << " requests over " << unique_docs
            << " unique documents, max_batch=" << max_batch << "\n\n";

  SequenceLabelingModel model = api::NewModel("invoices");
  TrainOptions train;
  train.total_steps = train_steps;
  train.validate_every = train_steps;
  api::Train(model, corpus, {}, train);

  // Sequential baseline: one direct Predict per request, single-threaded,
  // no batching, no caching — the pre-serve integration pattern.
  par::SetThreads(1);
  std::vector<std::vector<EntitySpan>> baseline(trace.size());
  obs::Stopwatch timer;
  for (size_t i = 0; i < trace.size(); ++i) {
    baseline[i] = model.Predict(trace[i]);
  }
  double sequential_s = timer.ElapsedSeconds();
  obs::GaugeSet("fieldswap.serve.bench.sequential_s", sequential_s);

  TablePrinter table({"configuration", "wall s", "docs/s", "speedup",
                      "p50 ms", "p99 ms", "identical"});
  table.AddRow({"sequential Predict", FormatDouble(sequential_s, 3),
                FormatDouble(trace.size() / sequential_s, 1), "1.00x", "-",
                "-", "yes"});

  double speedup_at_8 = 0;
  for (int threads : {1, 2, 4, 8}) {
    par::SetThreads(threads);
    // Fresh server per configuration so every run starts cache-cold and
    // the comparison across thread counts is fair.
    serve::ServeOptions options;
    options.max_batch = max_batch;
    auto server = serve::ExtractionServer(
        serve::MakeSnapshot(model, "bench"), options);

    timer.Restart();
    std::vector<serve::ExtractResponse> responses =
        server.ExtractBatch(trace);
    double batched_s = timer.ElapsedSeconds();

    bool identical = true;
    std::vector<double> latencies;
    latencies.reserve(responses.size());
    for (size_t i = 0; i < responses.size(); ++i) {
      FS_CHECK(responses[i].status == serve::ServeStatus::kOk)
          << "request " << i << " rejected: " << responses[i].error;
      identical = identical && responses[i].spans == baseline[i];
      latencies.push_back(responses[i].latency_ms);
    }
    FS_CHECK(identical)
        << "server payloads diverged from direct Predict at threads="
        << threads << " — the bit-identity contract is broken";

    double speedup = batched_s > 0 ? sequential_s / batched_s : 0;
    if (threads == 8) speedup_at_8 = speedup;
    std::string tag = "threads_" + std::to_string(threads);
    obs::GaugeSet("fieldswap.serve.bench." + tag + ".wall_s", batched_s);
    obs::GaugeSet("fieldswap.serve.bench." + tag + ".speedup", speedup);
    obs::GaugeSet("fieldswap.serve.bench." + tag + ".p50_ms",
                  Percentile(latencies, 0.50));
    obs::GaugeSet("fieldswap.serve.bench." + tag + ".p99_ms",
                  Percentile(latencies, 0.99));
    table.AddRow({"server, " + std::to_string(threads) + " threads",
                  FormatDouble(batched_s, 3),
                  FormatDouble(trace.size() / batched_s, 1),
                  FormatDouble(speedup, 2) + "x",
                  FormatDouble(Percentile(latencies, 0.50), 2),
                  FormatDouble(Percentile(latencies, 0.99), 2),
                  identical ? "yes" : "NO"});
  }

  table.Print(std::cout);
  std::cout << "\nspeedup at 8 threads: " << FormatDouble(speedup_at_8, 2)
            << "x (target >= 3x; caches carry it on single-core machines, "
               "the pool stacks on top with real cores)\n";
}

}  // namespace
}  // namespace fieldswap

int main() {
  fieldswap::Run();
  return 0;
}
