// Serving throughput: the batched ExtractionServer against the sequential
// per-document Predict baseline, on a repeat-heavy request trace (the
// serving workload FieldSwap targets — the same form templates arriving
// again and again). The server wins twice: encode/predict batches fan out
// across the par pool, and repeated documents collapse into encoded-doc /
// result cache hits. Payloads are FS_CHECKed bit-identical to the baseline
// at every thread count and batch size before any timing is reported.
//
// On a single-core container the pool adds nothing, so the speedup column
// is carried by the caches; with real cores both effects stack.

#include <algorithm>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "api/fieldswap_api.h"
#include "bench_util.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table.h"

namespace fieldswap {
namespace {

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[rank];
}

void Run() {
  PrintBanner("Serving throughput (batched ExtractionServer)",
              ">=3x over sequential per-doc Predict on repeat traffic at 8 "
              "threads; payloads bit-identical at every configuration");

  const int unique_docs = EnvInt("FIELDSWAP_SERVE_BENCH_DOCS", 12);
  const int trace_len = EnvInt("FIELDSWAP_SERVE_BENCH_TRACE", 96);
  const int train_steps = EnvInt("FIELDSWAP_SERVE_BENCH_STEPS", 60);
  const int max_batch = EnvInt("FIELDSWAP_SERVE_BENCH_BATCH", 16);

  DomainSpec spec = InvoicesSpec();
  std::vector<Document> corpus =
      GenerateCorpus(spec, unique_docs, /*seed=*/404, "serve-bench");

  // A repeat-heavy trace: trace_len requests cycling over unique_docs
  // documents, the shape of production traffic where a handful of form
  // templates dominate.
  std::vector<Document> trace;
  trace.reserve(static_cast<size_t>(trace_len));
  for (int i = 0; i < trace_len; ++i) {
    trace.push_back(corpus[static_cast<size_t>(i) % corpus.size()]);
  }
  std::cout << "trace: " << trace_len << " requests over " << unique_docs
            << " unique documents, max_batch=" << max_batch << "\n\n";

  SequenceLabelingModel model = api::NewModel("invoices");
  TrainOptions train;
  train.total_steps = train_steps;
  train.validate_every = train_steps;
  api::Train(model, corpus, {}, train);

  // Sequential baseline: one direct Predict per request, single-threaded,
  // no batching, no caching — the pre-serve integration pattern.
  par::SetThreads(1);
  std::vector<std::vector<EntitySpan>> baseline(trace.size());
  obs::Stopwatch timer;
  for (size_t i = 0; i < trace.size(); ++i) {
    baseline[i] = model.Predict(trace[i]);
  }
  double sequential_s = timer.ElapsedSeconds();
  obs::GaugeSet("fieldswap.serve.bench.sequential_s", sequential_s);

  TablePrinter table({"configuration", "wall s", "docs/s", "speedup",
                      "p50 ms", "p99 ms", "identical"});
  table.AddRow({"sequential Predict", FormatDouble(sequential_s, 3),
                FormatDouble(trace.size() / sequential_s, 1), "1.00x", "-",
                "-", "yes"});

  double speedup_at_8 = 0;
  for (int threads : {1, 2, 4, 8}) {
    par::SetThreads(threads);
    // Fresh server per configuration so every run starts cache-cold and
    // the comparison across thread counts is fair.
    serve::ServeOptions options;
    options.max_batch = max_batch;
    auto server = serve::ExtractionServer(
        serve::MakeSnapshot(model, "bench"), options);

    timer.Restart();
    std::vector<serve::ExtractResponse> responses =
        server.ExtractBatch(trace);
    double batched_s = timer.ElapsedSeconds();

    bool identical = true;
    std::vector<double> latencies;
    latencies.reserve(responses.size());
    for (size_t i = 0; i < responses.size(); ++i) {
      FS_CHECK(responses[i].status == serve::ServeStatus::kOk)
          << "request " << i << " rejected: " << responses[i].error;
      identical = identical && responses[i].spans == baseline[i];
      latencies.push_back(responses[i].latency_ms);
    }
    FS_CHECK(identical)
        << "server payloads diverged from direct Predict at threads="
        << threads << " — the bit-identity contract is broken";

    double speedup = batched_s > 0 ? sequential_s / batched_s : 0;
    if (threads == 8) speedup_at_8 = speedup;
    std::string tag = "threads_" + std::to_string(threads);
    obs::GaugeSet("fieldswap.serve.bench." + tag + ".wall_s", batched_s);
    obs::GaugeSet("fieldswap.serve.bench." + tag + ".speedup", speedup);
    obs::GaugeSet("fieldswap.serve.bench." + tag + ".p50_ms",
                  Percentile(latencies, 0.50));
    obs::GaugeSet("fieldswap.serve.bench." + tag + ".p99_ms",
                  Percentile(latencies, 0.99));
    table.AddRow({"server, " + std::to_string(threads) + " threads",
                  FormatDouble(batched_s, 3),
                  FormatDouble(trace.size() / batched_s, 1),
                  FormatDouble(speedup, 2) + "x",
                  FormatDouble(Percentile(latencies, 0.50), 2),
                  FormatDouble(Percentile(latencies, 0.99), 2),
                  identical ? "yes" : "NO"});
  }

  table.Print(std::cout);
  std::cout << "\nspeedup at 8 threads: " << FormatDouble(speedup_at_8, 2)
            << "x (target >= 3x; caches carry it on single-core machines, "
               "the pool stacks on top with real cores)\n";
}

// Multi-tenant mixed traffic (ISSUE 8): one hot tenant floods far past its
// admission quota while three victim tenants submit steady modest traffic.
// Deterministic FS_CHECKs hold the fairness contract (the hot tenant is
// quota-capped, victims are served completely and bit-identically to their
// solo baseline, and no victim request waits more batches than the DRR
// cycle bound); the wall-clock columns compare each victim's latency
// against a solo run of the same server with the hot tenant absent.
void RunMultiTenant() {
  PrintBanner("Multi-tenant fairness (registry + DRR batching)",
              "hot tenant quota-capped; victim latency within noise of its "
              "solo baseline; victim payloads bit-identical");

  const int rounds = EnvInt("FIELDSWAP_SERVE_BENCH_TENANT_ROUNDS", 6);
  const int victim_burst = EnvInt("FIELDSWAP_SERVE_BENCH_VICTIM_BURST", 4);
  const int hot_flood = EnvInt("FIELDSWAP_SERVE_BENCH_HOT_FLOOD", 40);
  const int train_steps = EnvInt("FIELDSWAP_SERVE_BENCH_STEPS", 60);

  DomainSpec spec = InvoicesSpec();
  std::vector<Document> corpus =
      GenerateCorpus(spec, 12, /*seed=*/405, "tenant-bench");
  SequenceLabelingModel model = api::NewModel("invoices");
  TrainOptions train;
  train.total_steps = train_steps;
  train.validate_every = train_steps;
  api::Train(model, corpus, {}, train);
  par::SetThreads(EnvInt("FIELDSWAP_THREADS", 4));

  // One registry, four tenants: each gets its own snapshot of the same
  // trained weights (distinct snapshot objects, so no cross-tenant packing
  // blurs the fairness picture). The hot tenant's admission quota is what
  // contains the flood.
  const std::vector<std::string> victims = {"victim-a", "victim-b",
                                            "victim-c"};
  auto build_registry = [&](bool with_hot) {
    auto registry = api::NewRegistry();
    serve::TenantQuota quota;
    quota.queue_capacity = 24;
    quota.batch_quantum = 4;
    if (with_hot) {
      api::PublishModel(*registry, "hot", model);
      registry->SetQuota("hot", quota);
    }
    for (const std::string& victim : victims) {
      api::PublishModel(*registry, victim, model);
      registry->SetQuota(victim, quota);
    }
    return registry;
  };
  serve::ServeOptions options;
  options.max_batch = 4;

  // Victim ground truth, for the bit-identity FS_CHECK.
  std::vector<std::vector<EntitySpan>> expected;
  for (const Document& doc : corpus) expected.push_back(model.Predict(doc));

  // One driver round: the hot tenant floods (mixed run only), every victim
  // submits a modest burst within its quantum, then the single-threaded
  // driver drains victims first and the flood after — submission order,
  // and with it every TenantStats counter, is run-deterministic.
  auto drive = [&](serve::MultiTenantServer& server, bool with_hot,
                   std::vector<double>& victim_latencies) {
    int64_t hot_rejected = 0;
    for (int round = 0; round < rounds; ++round) {
      std::vector<int64_t> hot_ids;
      if (with_hot) {
        for (int i = 0; i < hot_flood; ++i) {
          hot_ids.push_back(server.Submit(
              "hot", corpus[static_cast<size_t>(i) % corpus.size()]));
        }
      }
      std::vector<std::pair<int64_t, size_t>> victim_ids;
      for (size_t v = 0; v < victims.size(); ++v) {
        for (int i = 0; i < victim_burst; ++i) {
          size_t doc = static_cast<size_t>(round * victim_burst + i) %
                       corpus.size();
          victim_ids.push_back({server.Submit(victims[v], corpus[doc]), doc});
        }
      }
      for (const auto& [id, doc] : victim_ids) {
        serve::ExtractResponse response = server.Wait(id);
        FS_CHECK(response.status == serve::ServeStatus::kOk)
            << "victim request rejected: " << response.error;
        FS_CHECK(response.spans == expected[doc])
            << "victim payload diverged from solo Predict — bit-identity "
               "broken under multi-tenant scheduling";
        victim_latencies.push_back(response.latency_ms);
      }
      for (int64_t id : hot_ids) {
        if (server.Wait(id).status == serve::ServeStatus::kRejectedQuota) {
          ++hot_rejected;
        }
      }
    }
    return hot_rejected;
  };

  // Solo baseline: victims only, same driver cadence.
  auto solo_registry = build_registry(/*with_hot=*/false);
  serve::MultiTenantServer solo_server(solo_registry, options);
  std::vector<double> solo_latencies;
  obs::Stopwatch timer;
  drive(solo_server, /*with_hot=*/false, solo_latencies);
  double solo_s = timer.ElapsedSeconds();

  // Mixed run: the hot tenant floods every round.
  auto mixed_registry = build_registry(/*with_hot=*/true);
  serve::MultiTenantServer mixed_server(mixed_registry, options);
  std::vector<double> mixed_latencies;
  timer.Restart();
  int64_t hot_rejected = drive(mixed_server, /*with_hot=*/true,
                               mixed_latencies);
  double mixed_s = timer.ElapsedSeconds();

  // Deterministic fairness gates (these hold on every machine).
  FS_CHECK(hot_rejected > 0)
      << "the flood must overrun the hot tenant's admission quota";
  FS_CHECK(mixed_server.stats("hot").rejected_quota == hot_rejected);
  const int64_t num_tenants = 1 + static_cast<int64_t>(victims.size());
  for (const std::string& victim : victims) {
    serve::TenantStats stats = mixed_server.stats(victim);
    FS_CHECK(stats.served == stats.submitted)
        << victim << " lost requests to the flood";
    FS_CHECK(stats.rejected_quota == 0) << victim;
    FS_CHECK(stats.max_batches_waited <= num_tenants)
        << victim << " waited " << stats.max_batches_waited
        << " batches — past the DRR cycle bound of " << num_tenants;
  }

  int64_t victims_served = static_cast<int64_t>(mixed_latencies.size());
  int64_t hot_served = mixed_server.stats("hot").served;
  double solo_p50 = Percentile(solo_latencies, 0.50);
  double mixed_p50 = Percentile(mixed_latencies, 0.50);
  double p50_ratio = solo_p50 > 0 ? mixed_p50 / solo_p50 : 0;
  obs::GaugeSet("fieldswap.serve.bench.tenant.victim_solo_p50_ms", solo_p50);
  obs::GaugeSet("fieldswap.serve.bench.tenant.victim_mixed_p50_ms", mixed_p50);
  obs::GaugeSet("fieldswap.serve.bench.tenant.hot_rejected",
                static_cast<double>(hot_rejected));
  obs::GaugeSet("fieldswap.serve.bench.tenant.hot_served",
                static_cast<double>(hot_served));
  obs::GaugeSet("fieldswap.serve.bench.tenant.solo_wall_s", solo_s);
  obs::GaugeSet("fieldswap.serve.bench.tenant.mixed_wall_s", mixed_s);

  TablePrinter table({"tenant", "submitted", "served", "rejected",
                      "p100 batches waited", "p50 ms"});
  serve::TenantStats hot_stats = mixed_server.stats("hot");
  table.AddRow({"hot (flooding)", std::to_string(hot_stats.submitted),
                std::to_string(hot_stats.served),
                std::to_string(hot_stats.rejected_quota),
                std::to_string(hot_stats.max_batches_waited), "-"});
  for (const std::string& victim : victims) {
    serve::TenantStats stats = mixed_server.stats(victim);
    table.AddRow({victim, std::to_string(stats.submitted),
                  std::to_string(stats.served),
                  std::to_string(stats.rejected_quota),
                  std::to_string(stats.max_batches_waited),
                  FormatDouble(mixed_p50, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nvictims: " << victims_served << " requests, p50 "
            << FormatDouble(mixed_p50, 2) << " ms under flood vs "
            << FormatDouble(solo_p50, 2)
            << " ms solo (ratio " << FormatDouble(p50_ratio, 2)
            << "; wall-clock, not gated) — hot tenant quota-capped at "
            << hot_served << " served / " << hot_rejected << " rejected\n";
}

}  // namespace
}  // namespace fieldswap

int main() {
  fieldswap::Run();
  fieldswap::RunMultiTenant();
  return 0;
}
