// Robustness sweep: runs the form-attack severity ladder (after Xue et
// al.'s form attacks) over a baseline and a FieldSwap-augmented model on
// one domain, printing per-attack degradation curves and a per-field-type
// breakdown, and writing the full report to attack_sweep_report.json.
//
// Paper shape to reproduce: the FieldSwap model should lose *less* macro-F1
// than the baseline under key-phrase attacks — augmentation trains exactly
// the key-phrase variation the synonym attack injects.
//
// Output contract: everything on stdout and in the report JSON is
// bit-identical for any FIELDSWAP_THREADS value (timings and thread counts
// go to stderr / the metrics sidecar only), so this binary doubles as a
// determinism check for the attack layer.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/internals.h"
#include "bench_util.h"
#include "util/argparse.h"
#include "util/strings.h"
#include "util/table.h"

namespace fieldswap {
namespace {

void PrintFieldTypeTable(const attack::DegradationReport& report,
                         const DomainSchema& schema) {
  TablePrinter table({"attack", "severity", "address", "date", "money",
                      "number", "string"});
  auto row_for = [&](const std::string& label, double severity,
                     const attack::AttackEval& eval) {
    std::vector<std::string> row = {label, FormatDouble(severity, 2)};
    std::map<std::string, double> by_type = attack::F1ByFieldType(eval, schema);
    for (FieldType type : kAllFieldTypes) {
      std::string name(FieldTypeName(type));
      row.push_back(by_type.count(name) ? FormatDouble(by_type.at(name), 4)
                                        : "-");
    }
    table.AddRow(std::move(row));
  };
  row_for("(clean)", 0.0, report.clean);
  table.AddSeparator();
  for (const attack::AttackCurve& curve : report.curves) {
    // The ladder's top rung is the per-field-type story; middle rungs are
    // in the JSON report.
    row_for(curve.attack, curve.cells.back().severity,
            curve.cells.back().eval);
  }
  table.Print(std::cout);
}

void Run(const std::string& domain) {
  PrintBanner("Attack sweep: F1 degradation under form attacks",
              "FieldSwap-augmented model degrades less than baseline on "
              "key-phrase attacks");
  std::cerr << "[attack_sweep] threads=" << par::Threads() << "\n";

  DomainSpec spec = SpecByName(domain);
  ExperimentConfig config = BenchConfig(/*default_subsets=*/1,
                                        /*default_trials=*/1);
  int train_size = EnvInt("FIELDSWAP_ATTACK_TRAIN_DOCS", 40);

  // Human-expert FieldSwap needs no candidate model, which keeps the sweep
  // self-contained (no pretraining) and fast.
  ExperimentRunner runner(spec, config, /*candidate_model=*/nullptr);
  std::vector<ExperimentSetting> settings = {
      BaselineSetting(), FieldSwapSetting(MappingStrategy::kHumanExpert)};

  attack::AttackSuite suite = attack::BuildAttackSuite(spec);
  attack::AttackLadderConfig ladder;
  ladder.severities = {0.25, 0.5, 1.0};

  std::cout << "domain: " << domain << ", train docs: " << train_size
            << ", test docs: " << runner.test_docs().size() << "\n\n";
  std::vector<AttackedEvalArm> arms =
      RunAttackedEval(runner, settings, suite, ladder, train_size);

  DomainSchema schema = spec.Schema();
  for (const AttackedEvalArm& arm : arms) {
    std::cout << "=== setting: " << arm.setting_label << " ===\n";
    std::cout << attack::ReportToText(arm.report) << "\n";
    std::cout << "per-field-type mean F1 (ladder top rung):\n";
    PrintFieldTypeTable(arm.report, schema);
    std::cout << "\n";
  }

  // Headline comparison: max macro-F1 drop under the key-phrase synonym
  // attack, the variation FieldSwap explicitly augments against.
  TablePrinter headline({"setting", "clean macro_f1", "synonym max drop"});
  for (const AttackedEvalArm& arm : arms) {
    const attack::AttackCurve* curve = arm.report.Find("keyphrase_synonym");
    headline.AddRow({arm.setting_label,
                     FormatDouble(arm.report.clean.macro_f1, 4),
                     curve == nullptr
                         ? "-"
                         : FormatDouble(
                               curve->MaxMacroDrop(arm.report.clean.macro_f1),
                               4)});
  }
  std::cout << "headline (paper's robustness claim):\n";
  headline.Print(std::cout);

  std::string report_path = "attack_sweep_report.json";
  std::ofstream out(report_path);
  out << "{\n  \"domain\": \"" << domain << "\",\n  \"arms\": [";
  for (size_t i = 0; i < arms.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n    {\n      \"setting\": \"" << arms[i].setting_label
        << "\",\n      \"report\": ";
    // Reports are rendered standalone; re-indenting would complicate the
    // golden diff, so nest verbatim.
    out << attack::ReportToJson(arms[i].report);
    out << "    }";
  }
  out << "\n  ]\n}\n";
  std::cout << "\nwrote degradation report " << report_path << "\n";
}

}  // namespace
}  // namespace fieldswap

int main(int argc, char** argv) {
  fieldswap::util::ArgParser args(
      "attack_sweep",
      "Runs the form-attack severity ladder over a baseline and a "
      "FieldSwap-augmented model on one domain.");
  std::string domain;
  args.AddPositional("domain", "earnings", "synthetic domain to attack",
                     &domain);
  if (!args.Parse(argc, argv)) return args.help_requested() ? 0 : 2;
  fieldswap::Run(domain);
  return 0;
}
