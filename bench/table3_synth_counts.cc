// Regenerates Table III of the paper: average number of FieldSwap synthetic
// documents per domain, training-set size, and mapping strategy.
//
// Paper shape to reproduce: type-to-type generates roughly 3-10x more
// synthetics than field-to-field; the human expert setting (reported for
// Earnings and Loan Payments) lands in between; counts grow roughly
// linearly in the number of training documents.

#include <iostream>

#include "bench_util.h"
#include "util/strings.h"
#include "util/table.h"

namespace fieldswap {
namespace {

void Run() {
  PrintBanner("Table III: Average number of synthetic documents",
              "t2t ~3-10x f2f; human expert between; grows with train size");

  CandidateScoringModel candidate_model = BenchCandidateModel();
  ExperimentConfig config = BenchConfig(/*default_subsets=*/2,
                                        /*default_trials=*/1);
  config.test_size = 5;  // counting only; the test set is unused

  TablePrinter table({"Domain", "Original Training Set Size",
                      "FieldSwap (field-to-field)", "FieldSwap (type-to-type)",
                      "FieldSwap (human expert)"});
  for (const DomainSpec& spec : AllEvalDomains()) {
    // The paper reports the human expert column for Loan Payments and
    // Earnings only.
    bool with_expert =
        spec.name == "loan_payments" || spec.name == "earnings";
    ExperimentRunner runner(spec, config, &candidate_model);
    bool first = true;
    for (int size : {10, 50, 100}) {
      double f2f = runner.CountSynthetics(
          FieldSwapSetting(MappingStrategy::kFieldToField), size);
      double t2t = runner.CountSynthetics(
          FieldSwapSetting(MappingStrategy::kTypeToType), size);
      std::string expert = "-";
      if (with_expert) {
        expert = FormatWithCommas(static_cast<int64_t>(
            runner.CountSynthetics(
                FieldSwapSetting(MappingStrategy::kHumanExpert), size)));
      }
      table.AddRow({first ? spec.name : "", std::to_string(size),
                    FormatWithCommas(static_cast<int64_t>(f2f)),
                    FormatWithCommas(static_cast<int64_t>(t2t)), expert});
      first = false;
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  std::cout << "\nCounts are averaged over " << config.num_subsets
            << " random training subsets per point (uncapped generation).\n";
}

}  // namespace
}  // namespace fieldswap

int main() {
  fieldswap::Run();
  return 0;
}
