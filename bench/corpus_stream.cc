// Corpus streaming: the format-driver scale-out leg (ISSUE 10). Streams a
// large synthetic corpus through the native writer, checksums it back with
// sharded blocked iteration at two thread counts (FS_CHECKed bit-identical),
// and evaluates a model over a capped slice — all without the corpus ever
// existing as a std::vector<Document>. The bench asserts the bounded-memory
// claim: the process's peak-RSS growth across all three legs must stay
// under 25% of the estimated materialized-vector footprint (sum of
// doc::ApproxMemoryBytes over the corpus).
//
// Scale knobs (defaults sized for the single-core CI container):
//   FIELDSWAP_STREAM_DOCS       corpus size to write/read    (60000)
//   FIELDSWAP_STREAM_EVAL_DOCS  eval slice size              (300)
//   FIELDSWAP_STREAM_THREADS    sharded-read thread count    (4)
//
// The 1M-document scale-out of the ISSUE acceptance run is this same
// binary with FIELDSWAP_STREAM_DOCS=1000000.

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "api/fieldswap_api.h"
#include "bench_util.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table.h"

namespace fieldswap {
namespace {

std::string Hex(uint64_t value) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << value;
  return out.str();
}

void Run() {
  PrintBanner("Corpus streaming (format drivers, bounded memory)",
              "write/read/eval a corpus that never materializes: peak-RSS "
              "growth < 25% of the estimated vector footprint; sharded "
              "checksums bit-identical across thread counts");

  const int docs = EnvInt("FIELDSWAP_STREAM_DOCS", 60000);
  const int eval_docs = EnvInt("FIELDSWAP_STREAM_EVAL_DOCS", 300);
  const int read_threads = EnvInt("FIELDSWAP_STREAM_THREADS", 4);
  const std::string path = "corpus_stream_bench.fsc";
  const int64_t rss_before_kb = obs::SampleProcessStats().peak_rss_kb;

  // --- Leg 1: stream generator -> native writer. ------------------------
  // The reader is lazy (O(1) memory per Get) and the writer is streaming,
  // so this leg's footprint is one document plus the 8-byte-per-record
  // offset index.
  std::unique_ptr<doc::CorpusReader> generated =
      api::GenerateCorpusStream("earnings", docs, /*seed=*/91, "stream");
  uint64_t materialized_bytes = 0;
  obs::Stopwatch write_timer;
  {
    doc::CorpusStatus status;
    std::unique_ptr<doc::CorpusWriter> writer =
        api::WriteCorpus(path, "native", &status);
    FS_CHECK(writer != nullptr) << status.ToString();
    doc::BlockedMapDocuments(
        *generated, doc::kDefaultStreamBlock,
        [&](const Document& document, size_t) {
          std::string record;
          doc::EncodeDocumentBinary(document, &record);
          return std::pair<uint64_t, std::string>(
              doc::ApproxMemoryBytes(document), std::move(record));
        },
        [&](size_t, const std::pair<uint64_t, std::string>& sized) {
          materialized_bytes += sized.first;
        });
    // The blocked pass above only sizes the would-be vector; the actual
    // write streams the documents again through the writer's own encode so
    // the timed leg is the real write path.
    doc::ForEachDocument(*generated, [&](const Document& document, size_t) {
      FS_CHECK(writer->Add(document)) << writer->status().ToString();
    });
    FS_CHECK(writer->Finish()) << writer->status().ToString();
  }
  double write_s = write_timer.ElapsedSeconds();
  double write_rate = write_s > 0 ? docs / write_s : 0;
  obs::GaugeSet("fieldswap.stream.write_docs_per_s", write_rate);
  obs::GaugeSet("fieldswap.stream.docs", docs);

  // --- Leg 2: sharded read-back, 1 thread vs N. -------------------------
  doc::CorpusStatus status;
  std::unique_ptr<doc::CorpusReader> reader =
      api::OpenCorpus(path, "", &status);
  FS_CHECK(reader != nullptr) << status.ToString();
  FS_CHECK(reader->size() == static_cast<size_t>(docs));

  par::SetThreads(1);
  uint64_t checksum_serial = doc::CorpusChecksum(*reader);
  par::SetThreads(read_threads);
  obs::Stopwatch read_timer;
  uint64_t checksum_sharded = doc::CorpusChecksum(*reader);
  double read_s = read_timer.ElapsedSeconds();
  FS_CHECK(checksum_serial == checksum_sharded)
      << "sharded iteration diverged: " << Hex(checksum_serial) << " vs "
      << Hex(checksum_sharded) << " at " << read_threads << " threads";
  double read_rate = read_s > 0 ? docs / read_s : 0;
  obs::GaugeSet("fieldswap.stream.read_docs_per_s", read_rate);

  // --- Leg 3: streaming eval over a capped slice. -----------------------
  std::unique_ptr<doc::CorpusReader> train_reader =
      api::GenerateCorpusStream("earnings", 24, /*seed=*/92, "stream-train");
  SequenceLabelingModel model = api::NewModel("earnings");
  TrainOptions train;
  train.total_steps = 120;
  train.validate_every = 120;
  train.seed = 0x5eed;
  api::Train(model, *train_reader, nullptr, train);
  doc::CorpusSlice eval_slice(*reader, static_cast<size_t>(eval_docs));
  EvalResult eval = EvaluateModel(model, eval_slice);
  obs::GaugeSet("fieldswap.stream.eval_macro_f1", eval.macro_f1);

  // --- The bounded-memory assertion. ------------------------------------
  const int64_t rss_after_kb = obs::SampleProcessStats().peak_rss_kb;
  const uint64_t rss_growth_bytes =
      static_cast<uint64_t>(rss_after_kb - rss_before_kb) * 1024;
  obs::GaugeSet("fieldswap.stream.peak_rss_kb",
                static_cast<double>(rss_after_kb));
  obs::GaugeSet("fieldswap.stream.materialized_baseline_kb",
                static_cast<double>(materialized_bytes) / 1024.0);
  // A small floor keeps toy corpus sizes (where model + allocator overhead
  // dominates) from failing the streaming claim spuriously; at the default
  // 60k docs the quarter-of-baseline bound is the binding one.
  const uint64_t bound_bytes =
      std::max<uint64_t>(materialized_bytes / 4, 96ull << 20);
  FS_CHECK(rss_growth_bytes < bound_bytes)
      << "streaming RSS growth " << (rss_growth_bytes >> 20)
      << " MiB exceeds bound " << (bound_bytes >> 20)
      << " MiB (materialized baseline "
      << (materialized_bytes >> 20) << " MiB)";

  TablePrinter table({"leg", "docs", "wall s", "docs/s", "result"});
  table.AddRow({"write (synthetic -> native)", std::to_string(docs),
                FormatDouble(write_s, 2), FormatDouble(write_rate, 0),
                "checksum " + Hex(checksum_serial)});
  table.AddRow({"sharded read (" + std::to_string(read_threads) + " threads)",
                std::to_string(docs), FormatDouble(read_s, 2),
                FormatDouble(read_rate, 0),
                checksum_serial == checksum_sharded ? "bit-identical"
                                                    : "DIVERGED"});
  table.AddRow({"streaming eval", std::to_string(eval_slice.size()), "-", "-",
                "macro F1 " + FormatDouble(eval.macro_f1, 4)});
  table.Print(std::cout);
  std::cout << "\npeak-RSS growth: " << (rss_growth_bytes >> 20)
            << " MiB; materialized-vector estimate: "
            << (materialized_bytes >> 20)
            << " MiB (bound: < " << (bound_bytes >> 20) << " MiB)\n";

  std::remove(path.c_str());
}

}  // namespace
}  // namespace fieldswap

int main() {
  fieldswap::Run();
  return 0;
}
