// Multi-tenant serving throughput: the registry-backed MultiTenantServer
// across tenant counts, cross-tenant batch packing when tenants share a
// backbone snapshot, and sharded serving off one mmap'd flat snapshot.
// Complements bench/serve_throughput's hot-tenant fairness leg: that one
// proves a flood cannot starve victims; this one measures what multi-
// tenancy costs (and what snapshot sharing buys) on friendly traffic.
//
// Every leg FS_CHECKs payloads bit-identical to direct Predict before any
// number is reported, and the driver is single-threaded, so all counter
// metrics (batches, packed docs, shard routing) are run-deterministic —
// only the wall-clock columns move between runs.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/fieldswap_api.h"
#include "bench_util.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table.h"

namespace fieldswap {
namespace {

void Run() {
  PrintBanner("Multi-tenant serving throughput (registry, packing, flat "
              "shards)",
              "per-tenant isolation costs ~nothing on friendly traffic; "
              "shared-backbone tenants pack into shared batches; N shards "
              "serve one mmap'd weight copy bit-identically");

  const int unique_docs = EnvInt("FIELDSWAP_TENANT_BENCH_DOCS", 10);
  const int trace_len = EnvInt("FIELDSWAP_TENANT_BENCH_TRACE", 96);
  const int train_steps = EnvInt("FIELDSWAP_SERVE_BENCH_STEPS", 60);

  DomainSpec spec = InvoicesSpec();
  std::vector<Document> corpus =
      GenerateCorpus(spec, unique_docs, /*seed=*/406, "tenant-throughput");
  SequenceLabelingModel model = api::NewModel("invoices");
  TrainOptions train;
  train.total_steps = train_steps;
  train.validate_every = train_steps;
  api::Train(model, corpus, {}, train);
  par::SetThreads(EnvInt("FIELDSWAP_THREADS", 4));

  std::vector<std::vector<EntitySpan>> expected;
  for (const Document& doc : corpus) expected.push_back(model.Predict(doc));

  // Single-threaded closed-loop driver: round-robin the trace across T
  // tenants, submit everything, then wait in submission order. Returns
  // wall seconds; payloads are FS_CHECKed against direct Predict.
  auto drive = [&](serve::MultiTenantServer& server,
                   const std::vector<std::string>& tenants) {
    std::vector<std::pair<int64_t, size_t>> ids;
    obs::Stopwatch timer;
    for (int i = 0; i < trace_len; ++i) {
      size_t doc = static_cast<size_t>(i) % corpus.size();
      const std::string& tenant =
          tenants[static_cast<size_t>(i) % tenants.size()];
      ids.push_back({server.Submit(tenant, corpus[doc]), doc});
    }
    for (const auto& [id, doc] : ids) {
      serve::ExtractResponse response = server.Wait(id);
      FS_CHECK(response.status == serve::ServeStatus::kOk) << response.error;
      FS_CHECK(response.spans == expected[doc])
          << "multi-tenant payload diverged from direct Predict";
    }
    return timer.ElapsedSeconds();
  };
  auto tenant_names = [](int count) {
    std::vector<std::string> names;
    for (int t = 0; t < count; ++t) {
      names.push_back("tenant-" + std::to_string(t));
    }
    return names;
  };

  serve::ServeOptions options;
  options.max_batch = 16;
  serve::TenantQuota quota;
  quota.queue_capacity = trace_len;  // friendly traffic: admission never sheds
  quota.batch_quantum = 4;

  // ---- Leg 1: tenant-count scaling, distinct snapshots ---------------------
  TablePrinter scaling({"tenants", "wall s", "docs/s", "batches",
                        "packed docs", "identical"});
  for (int count : {1, 2, 4, 8}) {
    std::vector<std::string> tenants = tenant_names(count);
    auto registry = api::NewRegistry();
    for (const std::string& tenant : tenants) {
      api::PublishModel(*registry, tenant, model);  // one snapshot each
      registry->SetQuota(tenant, quota);
    }
    serve::MultiTenantServer server(registry, options);
    double wall_s = drive(server, tenants);

    int64_t packed = 0;
    for (const std::string& tenant : tenants) {
      packed += server.stats(tenant).packed_docs;
    }
    FS_CHECK(packed == 0) << "distinct snapshots must never pack";
    std::string tag = "fieldswap.serve.bench.mt.tenants_" +
                      std::to_string(count);
    obs::GaugeSet(tag + ".wall_s", wall_s);
    obs::GaugeSet(tag + ".docs_per_s",
                  wall_s > 0 ? trace_len / wall_s : 0);
    scaling.AddRow({std::to_string(count), FormatDouble(wall_s, 3),
                    FormatDouble(wall_s > 0 ? trace_len / wall_s : 0, 1),
                    std::to_string(server.batches_run()),
                    std::to_string(packed), "yes"});
  }
  scaling.Print(std::cout);

  // ---- Leg 2: shared backbone vs distinct snapshots ------------------------
  // Same four tenants, same trace; the only change is publishing ONE
  // snapshot object to everyone. Packing folds the quantum-limited
  // per-tenant drains into shared batches, so batches_run drops and
  // packed_docs appears — for free, because the responses are identical
  // by construction.
  std::vector<std::string> tenants = tenant_names(4);
  auto shared_registry = api::NewRegistry();
  std::shared_ptr<const serve::ModelSnapshot> backbone =
      serve::MakeSnapshot(model, "backbone");
  for (const std::string& tenant : tenants) {
    shared_registry->Publish(tenant, backbone);
    shared_registry->SetQuota(tenant, quota);
  }
  serve::MultiTenantServer shared_server(shared_registry, options);
  double shared_s = drive(shared_server, tenants);
  int64_t shared_packed = 0;
  for (const std::string& tenant : tenants) {
    shared_packed += shared_server.stats(tenant).packed_docs;
  }

  auto distinct_registry = api::NewRegistry();
  for (const std::string& tenant : tenants) {
    api::PublishModel(*distinct_registry, tenant, model);
    distinct_registry->SetQuota(tenant, quota);
  }
  serve::MultiTenantServer distinct_server(distinct_registry, options);
  double distinct_s = drive(distinct_server, tenants);

  FS_CHECK(shared_packed > 0)
      << "shared-backbone tenants should pack into shared batches";
  FS_CHECK(shared_server.batches_run() <= distinct_server.batches_run())
      << "packing must never need MORE batches than isolated scheduling";
  obs::GaugeSet("fieldswap.serve.bench.mt.shared_backbone.wall_s", shared_s);
  obs::GaugeSet("fieldswap.serve.bench.mt.distinct.wall_s", distinct_s);
  std::cout << "\nshared backbone: " << shared_server.batches_run()
            << " batches (" << shared_packed << " docs packed) vs "
            << distinct_server.batches_run()
            << " batches with distinct snapshots\n";

  // ---- Leg 3: shards over one mmap'd flat snapshot -------------------------
  // Write the backbone once, map it back (weights become views into the
  // mapping), publish the mapped snapshot for every tenant, and serve
  // through 3 shards — the in-process analogue of N server processes
  // sharing one physical weight copy.
  std::string flat_path = "tenant_throughput_backbone.fsfl";
  std::string error;
  obs::Stopwatch flat_timer;
  FS_CHECK(api::SaveFlatSnapshot(flat_path, *backbone, &error)) << error;
  double write_ms = flat_timer.ElapsedMs();
  flat_timer.Restart();
  std::shared_ptr<const serve::ModelSnapshot> mapped =
      api::LoadFlatSnapshot(flat_path, &error);
  FS_CHECK(mapped != nullptr) << error;
  double map_ms = flat_timer.ElapsedMs();
  obs::GaugeSet("fieldswap.serve.bench.mt.flat_write_ms", write_ms);
  obs::GaugeSet("fieldswap.serve.bench.mt.flat_map_ms", map_ms);

  auto flat_registry = api::NewRegistry();
  for (const std::string& tenant : tenants) {
    flat_registry->Publish(tenant, mapped);
    flat_registry->SetQuota(tenant, quota);
  }
  serve::ShardedTenantService shards(flat_registry, 3, options);
  flat_timer.Restart();
  for (int i = 0; i < trace_len; ++i) {
    size_t doc = static_cast<size_t>(i) % corpus.size();
    const std::string& tenant =
        tenants[static_cast<size_t>(i) % tenants.size()];
    serve::ExtractResponse response =
        shards.Extract(tenant, corpus[doc]);
    FS_CHECK(response.status == serve::ServeStatus::kOk) << response.error;
    FS_CHECK(response.spans == expected[doc])
        << "mmap'd shard payload diverged from direct Predict";
  }
  double shard_s = flat_timer.ElapsedSeconds();
  obs::GaugeSet("fieldswap.serve.bench.mt.flat_shards.wall_s", shard_s);
  shards.Shutdown();
  std::remove(flat_path.c_str());

  std::cout << "flat snapshot: write " << FormatDouble(write_ms, 2)
            << " ms, mmap-load " << FormatDouble(map_ms, 2) << " ms; "
            << trace_len << " docs through 3 shards on the one mapping in "
            << FormatDouble(shard_s, 3)
            << " s — payloads bit-identical throughout\n";
}

}  // namespace
}  // namespace fieldswap

int main() {
  fieldswap::Run();
  return 0;
}
