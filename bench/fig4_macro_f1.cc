// Regenerates Fig. 4 of the paper: mean Macro-F1 learning curves across the
// five domains and training-set sizes {10, 50, 100}, for the baseline
// (no augmentation), automatic FieldSwap with field-to-field and
// type-to-type mappings, and (Earnings / Loan Payments only) the human
// expert configuration.
//
// Paper shape to reproduce: FieldSwap is neutral-or-better everywhere;
// the largest gains appear on Earnings (tabular, money-dominated, clear
// phrase indicators) and the smallest on FARA (mostly string fields);
// type-to-type wins at 10 docs while field-to-field catches up at 50-100;
// human expert adds further points on top of automatic.

#include <iostream>

#include "bench_util.h"
#include "util/strings.h"
#include "util/table.h"

namespace fieldswap {
namespace {

void Run() {
  PrintBanner("Fig. 4: Mean Macro-F1 learning curves",
              "FieldSwap >= baseline; biggest gains on Earnings (paper: "
              "+4-11), smallest on FARA; t2t best at 10 docs");

  CandidateScoringModel candidate_model = BenchCandidateModel();
  ExperimentConfig config = BenchConfig(/*default_subsets=*/2,
                                        /*default_trials=*/1);

  for (const DomainSpec& spec : AllEvalDomains()) {
    std::cout << "--- domain: " << spec.name << " ---\n";
    ExperimentRunner runner(spec, config, &candidate_model);

    std::vector<ExperimentSetting> settings = {
        BaselineSetting(),
        FieldSwapSetting(MappingStrategy::kFieldToField),
        FieldSwapSetting(MappingStrategy::kTypeToType),
    };
    if (spec.name == "earnings" || spec.name == "loan_payments") {
      settings.push_back(FieldSwapSetting(MappingStrategy::kHumanExpert));
    }

    TablePrinter table({"setting", "@10", "@50", "@100"});
    LearningCurve baseline_curve;
    for (const ExperimentSetting& setting : settings) {
      LearningCurve curve = runner.Run(setting);
      if (!setting.augmentation.has_value()) baseline_curve = curve;
      std::vector<std::string> row{curve.setting_label};
      for (int size : config.train_sizes) {
        const PointResult& point = curve.by_size.at(size);
        std::string cell = FormatDouble(point.macro_f1_mean, 1) + " (s=" +
                           FormatDouble(point.macro_f1_std, 1) + ")";
        if (setting.augmentation.has_value() &&
            baseline_curve.by_size.count(size)) {
          double delta = point.macro_f1_mean -
                         baseline_curve.by_size.at(size).macro_f1_mean;
          cell += (delta >= 0 ? " [+" : " [") + FormatDouble(delta, 1) + "]";
        }
        row.push_back(cell);
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Each point averages " << config.num_subsets << " subsets x "
            << config.num_trials << " trials (paper: 3 x 3); deltas vs "
               "baseline in brackets.\n";
}

}  // namespace
}  // namespace fieldswap

int main() {
  fieldswap::Run();
  return 0;
}
