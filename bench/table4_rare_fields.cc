// Regenerates Table IV of the paper: the fields with the largest mean F1
// gains between the automatic (field-to-field) and human expert settings
// when training on 50 documents of the Earnings domain.
//
// Paper shape to reproduce: the gap concentrates on rare fields
// (sales_pay, pto_pay) whose key phrases are absent from small training
// samples — the expert supplies phrases the automatic approach has never
// seen, creating large per-field deltas.

#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.h"
#include "api/fieldswap_api.h"
#include "util/strings.h"
#include "util/table.h"

namespace fieldswap {
namespace {

void Run() {
  PrintBanner("Table IV: Rare-field gains, automatic vs human expert "
              "(Earnings @ 50 docs)",
              "largest deltas on rare fields, e.g. sales_pay +28, pto_pay "
              "+14-16 in the paper");

  CandidateScoringModel candidate_model = BenchCandidateModel();
  ExperimentConfig config = BenchConfig(/*default_subsets=*/2,
                                        /*default_trials=*/2);
  config.train_sizes = {50};
  DomainSpec spec = EarningsSpec();
  ExperimentRunner runner(spec, config, &candidate_model);

  LearningCurve automatic =
      runner.Run(FieldSwapSetting(MappingStrategy::kFieldToField));
  LearningCurve expert =
      runner.Run(FieldSwapSetting(MappingStrategy::kHumanExpert));
  const auto& auto_f1 = automatic.by_size.at(50).field_f1_mean;
  const auto& expert_f1 = expert.by_size.at(50).field_f1_mean;

  // Field document frequency over a 2000-document pool (the paper's
  // "Frequency" column).
  std::map<std::string, int> doc_counts;
  auto pool = GenerateCorpus(spec, 2000, 4242, "freq");
  for (const Document& doc : pool) {
    std::map<std::string, bool> present;
    for (const EntitySpan& span : doc.annotations()) present[span.field] = true;
    for (const auto& [field, unused] : present) ++doc_counts[field];
  }

  struct Row {
    std::string field;
    double frequency;
    double automatic;
    double expert;
    double delta;
  };
  std::vector<Row> rows;
  for (const FieldDef& def : spec.fields) {
    const std::string& field = def.spec.name;
    double a = auto_f1.count(field) ? auto_f1.at(field) : 0.0;
    double e = expert_f1.count(field) ? expert_f1.at(field) : 0.0;
    rows.push_back(Row{field,
                       100.0 * doc_counts[field] / 2000.0, a, e, e - a});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& x, const Row& y) { return x.delta > y.delta; });

  TablePrinter table({"Field", "Frequency", "F1 (FieldSwap, automatic)",
                      "F1 (FieldSwap, human expert)", "Delta F1"});
  int shown = 0;
  for (const Row& row : rows) {
    if (shown++ >= 6) break;
    table.AddRow({row.field, FormatDouble(row.frequency, 1) + "%",
                  FormatDouble(row.automatic, 2), FormatDouble(row.expert, 2),
                  FormatDouble(row.delta, 2)});
  }
  table.Print(std::cout);

  std::cout << "\nMacro-F1 @50: automatic (f2f) = "
            << FormatDouble(automatic.by_size.at(50).macro_f1_mean, 1)
            << ", human expert = "
            << FormatDouble(expert.by_size.at(50).macro_f1_mean, 1) << "\n";
}

}  // namespace
}  // namespace fieldswap

int main() {
  fieldswap::Run();
  return 0;
}
