#ifndef FIELDSWAP_BENCH_BENCH_UTIL_H_
#define FIELDSWAP_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "api/fieldswap_api.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace fieldswap {
namespace bench_internal {

/// State behind the at-exit metrics sidecar armed by PrintBanner.
inline std::string& SidecarSlug() {
  static std::string* slug = new std::string;
  return *slug;
}

inline std::chrono::steady_clock::time_point& BenchStart() {
  static std::chrono::steady_clock::time_point start;
  return start;
}

/// "Table I: Dataset Statistics" -> "table_i_dataset_statistics".
inline std::string SlugFromArtifact(const std::string& artifact) {
  std::string slug;
  for (char c : artifact) {
    if (c >= 'A' && c <= 'Z') {
      slug.push_back(static_cast<char>(c + 32));
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      slug.push_back(c);
    } else if (!slug.empty() && slug.back() != '_') {
      slug.push_back('_');
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug.empty() ? std::string("bench") : slug;
}

/// Version of the `.metrics.json` sidecar layout every bench binary emits.
/// v1 was the unversioned {bench, wall_time_s, peak_rss_kb, metrics} shape;
/// v2 adds this field, the aggregated span profile, and the
/// `fieldswap.process.*` gauges. tools/bench_trajectory consumes this
/// schema — bump the number when the layout changes and teach
/// obs::SummarizeSidecar to read the old one.
inline constexpr int kSidecarSchemaVersion = 2;

/// Writes the standardized bench sidecar: schema version, wall time, peak
/// RSS, the full global metrics registry (with `fieldswap.process.*`
/// gauges sampled at write time), and the deterministic span profile from
/// the global trace. This is the one writer every bench binary shares —
/// the per-binary hand-rolled emission it replaced is what made sidecars
/// impossible to diff.
inline void WriteBenchSidecar(const std::string& path, const std::string& slug,
                              double wall_s) {
  obs::PublishProcessGauges();
  obs::ProcessStats stats = obs::SampleProcessStats();
  std::ofstream out(path);
  if (!out) return;
  out << "{\"schema_version\": " << kSidecarSchemaVersion << ", \"bench\": \""
      << slug << "\", \"wall_time_s\": " << wall_s
      << ", \"peak_rss_kb\": " << stats.peak_rss_kb
      << ", \"metrics\": " << obs::GlobalMetrics().ExportJson()
      << ", \"profile\": " << obs::BuildGlobalProfile().ToJson() << "}\n";
  if (out) {
    std::cerr << "[bench] wrote metrics sidecar " << path << "\n";
  }
}

/// At-exit hook armed by PrintBanner: drops `<slug>.metrics.json` next to
/// the printed artifact.
inline void WriteMetricsSidecar() {
  if (SidecarSlug().empty()) return;
  double wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - BenchStart())
                      .count();
  WriteBenchSidecar(SidecarSlug() + ".metrics.json", SidecarSlug(), wall_s);
}

}  // namespace bench_internal

/// Prints a banner naming the paper artifact this binary regenerates, and
/// arms an at-exit hook that drops a `<artifact-slug>.metrics.json` sidecar
/// next to the printed table/figure.
inline void PrintBanner(const std::string& artifact,
                        const std::string& paper_expectation) {
  if (bench_internal::SidecarSlug().empty()) {
    bench_internal::SidecarSlug() = bench_internal::SlugFromArtifact(artifact);
    bench_internal::BenchStart() = std::chrono::steady_clock::now();
    std::atexit(bench_internal::WriteMetricsSidecar);
  }
  std::cout << "================================================================\n"
            << "FieldSwap reproduction - " << artifact << "\n"
            << "Paper expectation: " << paper_expectation << "\n"
            << "================================================================\n\n";
}

/// Shared experiment configuration for the learning-curve benches. Defaults
/// are sized for a single CPU core; raise FIELDSWAP_SUBSETS /
/// FIELDSWAP_TRIALS / FIELDSWAP_TEST_DOCS to approach the paper's protocol
/// (3 subsets x 3 trials on the full test sets).
inline ExperimentConfig BenchConfig(int default_subsets, int default_trials) {
  ExperimentConfig config;
  config.num_subsets = default_subsets;
  config.num_trials = default_trials;
  config.test_size = 50;
  config.min_steps = 1500;
  config.steps_per_doc = 20;
  ApplyEnvOverrides(config);
  return config;
}

/// Loads (or trains once and caches) the invoice-pretrained candidate model
/// shared by all automatic-FieldSwap benches.
inline CandidateScoringModel BenchCandidateModel() {
  std::cout << "[setup] loading/pre-training out-of-domain candidate model "
               "(cached in data/fieldswap_candidate_model.ckpt)...\n";
  CandidateScoringModel model = GetOrTrainCachedCandidateModel();
  std::cout << "[setup] candidate model ready.\n\n";
  return model;
}

}  // namespace fieldswap

#endif  // FIELDSWAP_BENCH_BENCH_UTIL_H_
