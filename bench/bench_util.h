#ifndef FIELDSWAP_BENCH_BENCH_UTIL_H_
#define FIELDSWAP_BENCH_BENCH_UTIL_H_

#include <iostream>
#include <string>

#include "eval/experiment.h"

namespace fieldswap {

/// Prints a banner naming the paper artifact this binary regenerates.
inline void PrintBanner(const std::string& artifact,
                        const std::string& paper_expectation) {
  std::cout << "================================================================\n"
            << "FieldSwap reproduction - " << artifact << "\n"
            << "Paper expectation: " << paper_expectation << "\n"
            << "================================================================\n\n";
}

/// Shared experiment configuration for the learning-curve benches. Defaults
/// are sized for a single CPU core; raise FIELDSWAP_SUBSETS /
/// FIELDSWAP_TRIALS / FIELDSWAP_TEST_DOCS to approach the paper's protocol
/// (3 subsets x 3 trials on the full test sets).
inline ExperimentConfig BenchConfig(int default_subsets, int default_trials) {
  ExperimentConfig config;
  config.num_subsets = default_subsets;
  config.num_trials = default_trials;
  config.test_size = 50;
  config.min_steps = 1500;
  config.steps_per_doc = 20;
  ApplyEnvOverrides(config);
  return config;
}

/// Loads (or trains once and caches) the invoice-pretrained candidate model
/// shared by all automatic-FieldSwap benches.
inline CandidateScoringModel BenchCandidateModel() {
  std::cout << "[setup] loading/pre-training out-of-domain candidate model "
               "(cached in fieldswap_candidate_model.ckpt)...\n";
  CandidateScoringModel model = GetOrTrainCachedCandidateModel();
  std::cout << "[setup] candidate model ready.\n\n";
  return model;
}

}  // namespace fieldswap

#endif  // FIELDSWAP_BENCH_BENCH_UTIL_H_
