// Ablations over the design choices of Sec. II-A / II-C:
//   (1) the discard-unchanged rule (the paper's protection against
//       same-key-phrase contradictions),
//   (2) this repo's consistency filter for affected sibling fields (an
//       extension the paper poses as an open question),
//   (3) the key-phrase inference hyperparameters top-k and theta,
//   (4) robustness of phrase matching / generation to OCR noise.
//
// (1)-(2) are measured end to end on Earnings @ 25 docs; (3)-(4) are
// generation-level measurements (no training), so they run in seconds.

#include <iostream>

#include "bench_util.h"
#include "api/internals.h"
#include "util/strings.h"
#include "util/table.h"

namespace fieldswap {
namespace {

void EndToEndKnobs(const CandidateScoringModel& candidate_model) {
  std::cout << "[1/3] synthetic-quality knobs, Earnings @ 25 docs\n";
  ExperimentConfig config = BenchConfig(/*default_subsets=*/1,
                                        /*default_trials=*/1);
  config.train_sizes = {25};
  ExperimentRunner runner(EarningsSpec(), config, &candidate_model);

  struct Variant {
    const char* label;
    bool discard_unchanged;
    bool drop_affected;
  };
  const Variant variants[] = {
      {"t2t (discard + sibling filter, default)", true, true},
      {"t2t, no discard-unchanged rule", false, true},
      {"t2t, no sibling consistency filter (paper-simplest)", true, false},
      {"t2t, neither protection", false, false},
  };

  TablePrinter table({"variant", "macro@25", "micro@25", "synthetics"});
  LearningCurve baseline = runner.Run(BaselineSetting());
  table.AddRow({"baseline (no augmentation)",
                FormatDouble(baseline.by_size.at(25).macro_f1_mean, 1),
                FormatDouble(baseline.by_size.at(25).micro_f1_mean, 1), "0"});
  for (const Variant& variant : variants) {
    ExperimentSetting setting =
        FieldSwapSetting(MappingStrategy::kTypeToType);
    setting.label = variant.label;
    setting.augmentation->swap.discard_unchanged = variant.discard_unchanged;
    setting.augmentation->swap.drop_affected_fields = variant.drop_affected;
    LearningCurve curve = runner.Run(setting);
    table.AddRow({variant.label,
                  FormatDouble(curve.by_size.at(25).macro_f1_mean, 1),
                  FormatDouble(curve.by_size.at(25).micro_f1_mean, 1),
                  FormatDouble(curve.by_size.at(25).avg_synthetics, 0)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void InferenceKnobs(const CandidateScoringModel& candidate_model) {
  std::cout << "[2/3] key-phrase inference hyperparameters (top-k, theta), "
               "Earnings @ 50 docs\n";
  DomainSpec spec = EarningsSpec();
  auto docs = GenerateCorpus(spec, 50, 777, "knob");

  // Phrase precision against the generator's true vocabularies.
  auto measure = [&](int top_k, double theta) {
    KeyPhraseInferenceOptions options;
    options.top_k = top_k;
    options.threshold = theta;
    KeyPhraseConfig config =
        InferKeyPhrases(candidate_model, docs, spec.Schema(), options);
    int total = 0, correct = 0, fields_covered = 0;
    for (const auto& [field, phrases] : config) {
      const FieldDef* def = spec.Find(field);
      if (def == nullptr) continue;
      bool any_correct = false;
      for (const KeyPhrase& phrase : phrases) {
        ++total;
        for (const std::string& truth : def->phrases) {
          if (EqualsIgnoreCase(phrase.Text(), truth)) {
            ++correct;
            any_correct = true;
            break;
          }
        }
      }
      if (any_correct) ++fields_covered;
    }
    return std::tuple<int, int, int>(total, correct, fields_covered);
  };

  TablePrinter table({"top-k", "theta", "phrases kept", "true-vocab phrases",
                      "precision", "fields w/ true phrase"});
  for (int top_k : {1, 2, 3, 5}) {
    for (double theta : {0.2, 0.5, 0.9}) {
      auto [total, correct, covered] = measure(top_k, theta);
      table.AddRow({std::to_string(top_k), FormatDouble(theta, 1),
                    std::to_string(total), std::to_string(correct),
                    total == 0 ? "-"
                               : FormatDouble(100.0 * correct / total, 0) + "%",
                    std::to_string(covered)});
    }
  }
  table.Print(std::cout);
  std::cout << "(paper uses top-k=3, theta=0.2 after grid search)\n\n";
}

void NoiseRobustness() {
  std::cout << "[3/3] OCR-noise robustness of FieldSwap generation "
               "(human expert phrases, Earnings @ 30 docs)\n";
  DomainSpec spec = EarningsSpec();
  TablePrinter table({"char-sub prob", "box jitter", "synthetics generated",
                      "discarded unchanged"});
  for (double level : {0.0, 0.01, 0.03, 0.1}) {
    auto docs = GenerateCorpus(spec, 30, 888, "noise");
    OcrNoiseOptions noise;
    noise.char_substitution_prob = level;
    noise.box_jitter_frac = level;
    Rng rng(5);
    for (Document& doc : docs) {
      ApplyOcrNoise(doc, noise, rng);
      DetectAndAssignLines(doc);
    }
    FieldSwapPipelineOptions options;
    options.strategy = MappingStrategy::kHumanExpert;
    AugmentationResult result = RunFieldSwap(docs, spec, nullptr, options);
    table.AddRow({FormatDouble(level, 2), FormatDouble(level, 2),
                  std::to_string(result.stats.generated),
                  std::to_string(result.stats.discarded_unchanged)});
  }
  table.Print(std::cout);
  std::cout << "(generation degrades gracefully: corrupted label tokens "
               "simply stop matching key phrases)\n";
}

void Run() {
  PrintBanner("Ablations: Sec. II-A / II-C design choices",
              "protections help; top-k/theta trade phrase recall for "
              "precision; generation robust to mild OCR noise");
  CandidateScoringModel candidate_model = BenchCandidateModel();
  EndToEndKnobs(candidate_model);
  InferenceKnobs(candidate_model);
  NoiseRobustness();
}

}  // namespace
}  // namespace fieldswap

int main() {
  fieldswap::Run();
  return 0;
}
