// Regenerates Fig. 6 of the paper: box-plot statistics of per-field F1
// differences (FieldSwap type-to-type minus baseline) grouped by base type,
// for the Loan Payments and Earnings domains across all training sizes.
//
// Paper shape to reproduce: on Loan Payments the gains concentrate on date
// and money fields while address and string fields can go negative (they
// often lack clear key phrases, so automatic FieldSwap injects spurious
// correlations); on Earnings even address/string deltas skew positive.

#include <iostream>
#include <map>
#include <vector>

#include "bench_util.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace fieldswap {
namespace {

void Run() {
  PrintBanner("Fig. 6: Per-field F1 deltas by base type (t2t - baseline)",
              "Loan Payments: date/money positive, address/string can dip "
              "negative; Earnings mostly positive");

  CandidateScoringModel candidate_model = BenchCandidateModel();
  ExperimentConfig config = BenchConfig(/*default_subsets=*/2,
                                        /*default_trials=*/1);

  for (const std::string& domain : {std::string("loan_payments"),
                                    std::string("earnings")}) {
    DomainSpec spec = SpecByName(domain);
    DomainSchema schema = spec.Schema();
    std::cout << "--- domain: " << domain << " ---\n";
    ExperimentRunner runner(spec, config, &candidate_model);

    LearningCurve baseline = runner.Run(BaselineSetting());
    LearningCurve fieldswap =
        runner.Run(FieldSwapSetting(MappingStrategy::kTypeToType));

    // One delta sample per (field, train size), pooled by base type — the
    // population each of the paper's box plots is drawn from.
    std::map<FieldType, std::vector<double>> deltas_by_type;
    for (int size : config.train_sizes) {
      const auto& base_f1 = baseline.by_size.at(size).field_f1_mean;
      const auto& swap_f1 = fieldswap.by_size.at(size).field_f1_mean;
      for (const FieldSpec& field : schema.fields()) {
        double b = base_f1.count(field.name) ? base_f1.at(field.name) : 0.0;
        double s = swap_f1.count(field.name) ? swap_f1.at(field.name) : 0.0;
        deltas_by_type[field.type].push_back(s - b);
      }
    }

    TablePrinter table({"base type", "n", "median", "q1", "q3", "whisker lo",
                        "whisker hi", "# outliers"});
    for (FieldType type : kAllFieldTypes) {
      const auto& deltas = deltas_by_type[type];
      if (deltas.empty()) {
        table.AddRow({std::string(FieldTypeName(type)), "0", "-", "-", "-",
                      "-", "-", "-"});
        continue;
      }
      BoxStats stats = ComputeBoxStats(deltas);
      table.AddRow({std::string(FieldTypeName(type)),
                    std::to_string(stats.n), FormatDouble(stats.median, 1),
                    FormatDouble(stats.q1, 1), FormatDouble(stats.q3, 1),
                    FormatDouble(stats.whisker_lo, 1),
                    FormatDouble(stats.whisker_hi, 1),
                    std::to_string(stats.outliers.size())});
    }
    table.Print(std::cout);
    std::cout << "(whiskers extend to the furthest point within 1.5 IQR of "
                 "the quartiles, as in the paper's plots; the red y=0 line "
                 "separates gains from losses)\n\n";
  }
}

}  // namespace
}  // namespace fieldswap

int main() {
  fieldswap::Run();
  return 0;
}
