file(REMOVE_RECURSE
  "CMakeFiles/fieldswap_integration_tests.dir/integration_test.cc.o"
  "CMakeFiles/fieldswap_integration_tests.dir/integration_test.cc.o.d"
  "fieldswap_integration_tests"
  "fieldswap_integration_tests.pdb"
  "fieldswap_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fieldswap_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
