# Empty compiler generated dependencies file for fieldswap_integration_tests.
# This may be replaced when dependencies are built.
