file(REMOVE_RECURSE
  "CMakeFiles/fieldswap_unit_tests.dir/autodiff_gradcheck_test.cc.o"
  "CMakeFiles/fieldswap_unit_tests.dir/autodiff_gradcheck_test.cc.o.d"
  "CMakeFiles/fieldswap_unit_tests.dir/core_test.cc.o"
  "CMakeFiles/fieldswap_unit_tests.dir/core_test.cc.o.d"
  "CMakeFiles/fieldswap_unit_tests.dir/doc_test.cc.o"
  "CMakeFiles/fieldswap_unit_tests.dir/doc_test.cc.o.d"
  "CMakeFiles/fieldswap_unit_tests.dir/extensions_test.cc.o"
  "CMakeFiles/fieldswap_unit_tests.dir/extensions_test.cc.o.d"
  "CMakeFiles/fieldswap_unit_tests.dir/metrics_test.cc.o"
  "CMakeFiles/fieldswap_unit_tests.dir/metrics_test.cc.o.d"
  "CMakeFiles/fieldswap_unit_tests.dir/model_test.cc.o"
  "CMakeFiles/fieldswap_unit_tests.dir/model_test.cc.o.d"
  "CMakeFiles/fieldswap_unit_tests.dir/nn_test.cc.o"
  "CMakeFiles/fieldswap_unit_tests.dir/nn_test.cc.o.d"
  "CMakeFiles/fieldswap_unit_tests.dir/ocr_test.cc.o"
  "CMakeFiles/fieldswap_unit_tests.dir/ocr_test.cc.o.d"
  "CMakeFiles/fieldswap_unit_tests.dir/property_test.cc.o"
  "CMakeFiles/fieldswap_unit_tests.dir/property_test.cc.o.d"
  "CMakeFiles/fieldswap_unit_tests.dir/synth_test.cc.o"
  "CMakeFiles/fieldswap_unit_tests.dir/synth_test.cc.o.d"
  "CMakeFiles/fieldswap_unit_tests.dir/util_test.cc.o"
  "CMakeFiles/fieldswap_unit_tests.dir/util_test.cc.o.d"
  "fieldswap_unit_tests"
  "fieldswap_unit_tests.pdb"
  "fieldswap_unit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fieldswap_unit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
