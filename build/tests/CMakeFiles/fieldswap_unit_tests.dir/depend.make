# Empty dependencies file for fieldswap_unit_tests.
# This may be replaced when dependencies are built.
