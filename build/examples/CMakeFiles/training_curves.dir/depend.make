# Empty dependencies file for training_curves.
# This may be replaced when dependencies are built.
