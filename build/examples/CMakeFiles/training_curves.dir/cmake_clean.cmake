file(REMOVE_RECURSE
  "CMakeFiles/training_curves.dir/training_curves.cpp.o"
  "CMakeFiles/training_curves.dir/training_curves.cpp.o.d"
  "training_curves"
  "training_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/training_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
