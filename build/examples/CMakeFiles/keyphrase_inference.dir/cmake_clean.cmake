file(REMOVE_RECURSE
  "CMakeFiles/keyphrase_inference.dir/keyphrase_inference.cpp.o"
  "CMakeFiles/keyphrase_inference.dir/keyphrase_inference.cpp.o.d"
  "keyphrase_inference"
  "keyphrase_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyphrase_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
