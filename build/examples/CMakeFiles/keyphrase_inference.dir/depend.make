# Empty dependencies file for keyphrase_inference.
# This may be replaced when dependencies are built.
