file(REMOVE_RECURSE
  "CMakeFiles/export_and_augment.dir/export_and_augment.cpp.o"
  "CMakeFiles/export_and_augment.dir/export_and_augment.cpp.o.d"
  "export_and_augment"
  "export_and_augment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_and_augment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
