# Empty dependencies file for export_and_augment.
# This may be replaced when dependencies are built.
