file(REMOVE_RECURSE
  "CMakeFiles/paystub_augmentation.dir/paystub_augmentation.cpp.o"
  "CMakeFiles/paystub_augmentation.dir/paystub_augmentation.cpp.o.d"
  "paystub_augmentation"
  "paystub_augmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paystub_augmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
