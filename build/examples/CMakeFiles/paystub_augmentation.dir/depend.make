# Empty dependencies file for paystub_augmentation.
# This may be replaced when dependencies are built.
