file(REMOVE_RECURSE
  "libfieldswap_doc.a"
)
