# Empty dependencies file for fieldswap_doc.
# This may be replaced when dependencies are built.
