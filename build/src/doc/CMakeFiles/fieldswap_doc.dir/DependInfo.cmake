
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/doc/bbox.cc" "src/doc/CMakeFiles/fieldswap_doc.dir/bbox.cc.o" "gcc" "src/doc/CMakeFiles/fieldswap_doc.dir/bbox.cc.o.d"
  "/root/repo/src/doc/document.cc" "src/doc/CMakeFiles/fieldswap_doc.dir/document.cc.o" "gcc" "src/doc/CMakeFiles/fieldswap_doc.dir/document.cc.o.d"
  "/root/repo/src/doc/schema.cc" "src/doc/CMakeFiles/fieldswap_doc.dir/schema.cc.o" "gcc" "src/doc/CMakeFiles/fieldswap_doc.dir/schema.cc.o.d"
  "/root/repo/src/doc/serialize.cc" "src/doc/CMakeFiles/fieldswap_doc.dir/serialize.cc.o" "gcc" "src/doc/CMakeFiles/fieldswap_doc.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fieldswap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
