file(REMOVE_RECURSE
  "CMakeFiles/fieldswap_doc.dir/bbox.cc.o"
  "CMakeFiles/fieldswap_doc.dir/bbox.cc.o.d"
  "CMakeFiles/fieldswap_doc.dir/document.cc.o"
  "CMakeFiles/fieldswap_doc.dir/document.cc.o.d"
  "CMakeFiles/fieldswap_doc.dir/schema.cc.o"
  "CMakeFiles/fieldswap_doc.dir/schema.cc.o.d"
  "CMakeFiles/fieldswap_doc.dir/serialize.cc.o"
  "CMakeFiles/fieldswap_doc.dir/serialize.cc.o.d"
  "libfieldswap_doc.a"
  "libfieldswap_doc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fieldswap_doc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
