# Empty dependencies file for fieldswap_model.
# This may be replaced when dependencies are built.
