
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/annotators.cc" "src/model/CMakeFiles/fieldswap_model.dir/annotators.cc.o" "gcc" "src/model/CMakeFiles/fieldswap_model.dir/annotators.cc.o.d"
  "/root/repo/src/model/candidate_model.cc" "src/model/CMakeFiles/fieldswap_model.dir/candidate_model.cc.o" "gcc" "src/model/CMakeFiles/fieldswap_model.dir/candidate_model.cc.o.d"
  "/root/repo/src/model/decoder.cc" "src/model/CMakeFiles/fieldswap_model.dir/decoder.cc.o" "gcc" "src/model/CMakeFiles/fieldswap_model.dir/decoder.cc.o.d"
  "/root/repo/src/model/features.cc" "src/model/CMakeFiles/fieldswap_model.dir/features.cc.o" "gcc" "src/model/CMakeFiles/fieldswap_model.dir/features.cc.o.d"
  "/root/repo/src/model/sequence_model.cc" "src/model/CMakeFiles/fieldswap_model.dir/sequence_model.cc.o" "gcc" "src/model/CMakeFiles/fieldswap_model.dir/sequence_model.cc.o.d"
  "/root/repo/src/model/trainer.cc" "src/model/CMakeFiles/fieldswap_model.dir/trainer.cc.o" "gcc" "src/model/CMakeFiles/fieldswap_model.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/doc/CMakeFiles/fieldswap_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fieldswap_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fieldswap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
