file(REMOVE_RECURSE
  "CMakeFiles/fieldswap_model.dir/annotators.cc.o"
  "CMakeFiles/fieldswap_model.dir/annotators.cc.o.d"
  "CMakeFiles/fieldswap_model.dir/candidate_model.cc.o"
  "CMakeFiles/fieldswap_model.dir/candidate_model.cc.o.d"
  "CMakeFiles/fieldswap_model.dir/decoder.cc.o"
  "CMakeFiles/fieldswap_model.dir/decoder.cc.o.d"
  "CMakeFiles/fieldswap_model.dir/features.cc.o"
  "CMakeFiles/fieldswap_model.dir/features.cc.o.d"
  "CMakeFiles/fieldswap_model.dir/sequence_model.cc.o"
  "CMakeFiles/fieldswap_model.dir/sequence_model.cc.o.d"
  "CMakeFiles/fieldswap_model.dir/trainer.cc.o"
  "CMakeFiles/fieldswap_model.dir/trainer.cc.o.d"
  "libfieldswap_model.a"
  "libfieldswap_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fieldswap_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
