file(REMOVE_RECURSE
  "libfieldswap_model.a"
)
