file(REMOVE_RECURSE
  "libfieldswap_ocr.a"
)
