# Empty dependencies file for fieldswap_ocr.
# This may be replaced when dependencies are built.
