file(REMOVE_RECURSE
  "CMakeFiles/fieldswap_ocr.dir/line_detector.cc.o"
  "CMakeFiles/fieldswap_ocr.dir/line_detector.cc.o.d"
  "CMakeFiles/fieldswap_ocr.dir/noise.cc.o"
  "CMakeFiles/fieldswap_ocr.dir/noise.cc.o.d"
  "CMakeFiles/fieldswap_ocr.dir/reading_order.cc.o"
  "CMakeFiles/fieldswap_ocr.dir/reading_order.cc.o.d"
  "libfieldswap_ocr.a"
  "libfieldswap_ocr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fieldswap_ocr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
