
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ocr/line_detector.cc" "src/ocr/CMakeFiles/fieldswap_ocr.dir/line_detector.cc.o" "gcc" "src/ocr/CMakeFiles/fieldswap_ocr.dir/line_detector.cc.o.d"
  "/root/repo/src/ocr/noise.cc" "src/ocr/CMakeFiles/fieldswap_ocr.dir/noise.cc.o" "gcc" "src/ocr/CMakeFiles/fieldswap_ocr.dir/noise.cc.o.d"
  "/root/repo/src/ocr/reading_order.cc" "src/ocr/CMakeFiles/fieldswap_ocr.dir/reading_order.cc.o" "gcc" "src/ocr/CMakeFiles/fieldswap_ocr.dir/reading_order.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/doc/CMakeFiles/fieldswap_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fieldswap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
