
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/builder.cc" "src/synth/CMakeFiles/fieldswap_synth.dir/builder.cc.o" "gcc" "src/synth/CMakeFiles/fieldswap_synth.dir/builder.cc.o.d"
  "/root/repo/src/synth/domains.cc" "src/synth/CMakeFiles/fieldswap_synth.dir/domains.cc.o" "gcc" "src/synth/CMakeFiles/fieldswap_synth.dir/domains.cc.o.d"
  "/root/repo/src/synth/generator.cc" "src/synth/CMakeFiles/fieldswap_synth.dir/generator.cc.o" "gcc" "src/synth/CMakeFiles/fieldswap_synth.dir/generator.cc.o.d"
  "/root/repo/src/synth/spec.cc" "src/synth/CMakeFiles/fieldswap_synth.dir/spec.cc.o" "gcc" "src/synth/CMakeFiles/fieldswap_synth.dir/spec.cc.o.d"
  "/root/repo/src/synth/values.cc" "src/synth/CMakeFiles/fieldswap_synth.dir/values.cc.o" "gcc" "src/synth/CMakeFiles/fieldswap_synth.dir/values.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/doc/CMakeFiles/fieldswap_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/ocr/CMakeFiles/fieldswap_ocr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fieldswap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
