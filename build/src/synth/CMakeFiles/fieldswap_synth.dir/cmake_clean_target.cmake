file(REMOVE_RECURSE
  "libfieldswap_synth.a"
)
