# Empty dependencies file for fieldswap_synth.
# This may be replaced when dependencies are built.
