file(REMOVE_RECURSE
  "CMakeFiles/fieldswap_synth.dir/builder.cc.o"
  "CMakeFiles/fieldswap_synth.dir/builder.cc.o.d"
  "CMakeFiles/fieldswap_synth.dir/domains.cc.o"
  "CMakeFiles/fieldswap_synth.dir/domains.cc.o.d"
  "CMakeFiles/fieldswap_synth.dir/generator.cc.o"
  "CMakeFiles/fieldswap_synth.dir/generator.cc.o.d"
  "CMakeFiles/fieldswap_synth.dir/spec.cc.o"
  "CMakeFiles/fieldswap_synth.dir/spec.cc.o.d"
  "CMakeFiles/fieldswap_synth.dir/values.cc.o"
  "CMakeFiles/fieldswap_synth.dir/values.cc.o.d"
  "libfieldswap_synth.a"
  "libfieldswap_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fieldswap_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
