# Empty dependencies file for fieldswap_nn.
# This may be replaced when dependencies are built.
