file(REMOVE_RECURSE
  "CMakeFiles/fieldswap_nn.dir/autodiff.cc.o"
  "CMakeFiles/fieldswap_nn.dir/autodiff.cc.o.d"
  "CMakeFiles/fieldswap_nn.dir/layers.cc.o"
  "CMakeFiles/fieldswap_nn.dir/layers.cc.o.d"
  "CMakeFiles/fieldswap_nn.dir/matrix.cc.o"
  "CMakeFiles/fieldswap_nn.dir/matrix.cc.o.d"
  "CMakeFiles/fieldswap_nn.dir/ops.cc.o"
  "CMakeFiles/fieldswap_nn.dir/ops.cc.o.d"
  "CMakeFiles/fieldswap_nn.dir/optimizer.cc.o"
  "CMakeFiles/fieldswap_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/fieldswap_nn.dir/serialize.cc.o"
  "CMakeFiles/fieldswap_nn.dir/serialize.cc.o.d"
  "CMakeFiles/fieldswap_nn.dir/sparsemax.cc.o"
  "CMakeFiles/fieldswap_nn.dir/sparsemax.cc.o.d"
  "libfieldswap_nn.a"
  "libfieldswap_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fieldswap_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
