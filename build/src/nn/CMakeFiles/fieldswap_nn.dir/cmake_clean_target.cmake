file(REMOVE_RECURSE
  "libfieldswap_nn.a"
)
