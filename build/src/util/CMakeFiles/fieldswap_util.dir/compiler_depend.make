# Empty compiler generated dependencies file for fieldswap_util.
# This may be replaced when dependencies are built.
