file(REMOVE_RECURSE
  "CMakeFiles/fieldswap_util.dir/rng.cc.o"
  "CMakeFiles/fieldswap_util.dir/rng.cc.o.d"
  "CMakeFiles/fieldswap_util.dir/stats.cc.o"
  "CMakeFiles/fieldswap_util.dir/stats.cc.o.d"
  "CMakeFiles/fieldswap_util.dir/strings.cc.o"
  "CMakeFiles/fieldswap_util.dir/strings.cc.o.d"
  "CMakeFiles/fieldswap_util.dir/table.cc.o"
  "CMakeFiles/fieldswap_util.dir/table.cc.o.d"
  "libfieldswap_util.a"
  "libfieldswap_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fieldswap_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
