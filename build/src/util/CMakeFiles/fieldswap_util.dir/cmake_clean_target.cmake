file(REMOVE_RECURSE
  "libfieldswap_util.a"
)
