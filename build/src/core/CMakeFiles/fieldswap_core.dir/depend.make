# Empty dependencies file for fieldswap_core.
# This may be replaced when dependencies are built.
