file(REMOVE_RECURSE
  "CMakeFiles/fieldswap_core.dir/baselines.cc.o"
  "CMakeFiles/fieldswap_core.dir/baselines.cc.o.d"
  "CMakeFiles/fieldswap_core.dir/field_pairs.cc.o"
  "CMakeFiles/fieldswap_core.dir/field_pairs.cc.o.d"
  "CMakeFiles/fieldswap_core.dir/human_expert.cc.o"
  "CMakeFiles/fieldswap_core.dir/human_expert.cc.o.d"
  "CMakeFiles/fieldswap_core.dir/key_phrases.cc.o"
  "CMakeFiles/fieldswap_core.dir/key_phrases.cc.o.d"
  "CMakeFiles/fieldswap_core.dir/phrase_suggest.cc.o"
  "CMakeFiles/fieldswap_core.dir/phrase_suggest.cc.o.d"
  "CMakeFiles/fieldswap_core.dir/pipeline.cc.o"
  "CMakeFiles/fieldswap_core.dir/pipeline.cc.o.d"
  "CMakeFiles/fieldswap_core.dir/swap.cc.o"
  "CMakeFiles/fieldswap_core.dir/swap.cc.o.d"
  "libfieldswap_core.a"
  "libfieldswap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fieldswap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
