
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/fieldswap_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/fieldswap_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/field_pairs.cc" "src/core/CMakeFiles/fieldswap_core.dir/field_pairs.cc.o" "gcc" "src/core/CMakeFiles/fieldswap_core.dir/field_pairs.cc.o.d"
  "/root/repo/src/core/human_expert.cc" "src/core/CMakeFiles/fieldswap_core.dir/human_expert.cc.o" "gcc" "src/core/CMakeFiles/fieldswap_core.dir/human_expert.cc.o.d"
  "/root/repo/src/core/key_phrases.cc" "src/core/CMakeFiles/fieldswap_core.dir/key_phrases.cc.o" "gcc" "src/core/CMakeFiles/fieldswap_core.dir/key_phrases.cc.o.d"
  "/root/repo/src/core/phrase_suggest.cc" "src/core/CMakeFiles/fieldswap_core.dir/phrase_suggest.cc.o" "gcc" "src/core/CMakeFiles/fieldswap_core.dir/phrase_suggest.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/fieldswap_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/fieldswap_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/swap.cc" "src/core/CMakeFiles/fieldswap_core.dir/swap.cc.o" "gcc" "src/core/CMakeFiles/fieldswap_core.dir/swap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/fieldswap_model.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/fieldswap_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/doc/CMakeFiles/fieldswap_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fieldswap_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fieldswap_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ocr/CMakeFiles/fieldswap_ocr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
