file(REMOVE_RECURSE
  "libfieldswap_core.a"
)
