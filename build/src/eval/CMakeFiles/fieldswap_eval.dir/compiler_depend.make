# Empty compiler generated dependencies file for fieldswap_eval.
# This may be replaced when dependencies are built.
