file(REMOVE_RECURSE
  "CMakeFiles/fieldswap_eval.dir/experiment.cc.o"
  "CMakeFiles/fieldswap_eval.dir/experiment.cc.o.d"
  "CMakeFiles/fieldswap_eval.dir/metrics.cc.o"
  "CMakeFiles/fieldswap_eval.dir/metrics.cc.o.d"
  "libfieldswap_eval.a"
  "libfieldswap_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fieldswap_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
