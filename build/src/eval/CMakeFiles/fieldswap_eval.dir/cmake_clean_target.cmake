file(REMOVE_RECURSE
  "libfieldswap_eval.a"
)
