
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_baselines.cc" "bench/CMakeFiles/ablation_baselines.dir/ablation_baselines.cc.o" "gcc" "bench/CMakeFiles/ablation_baselines.dir/ablation_baselines.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/fieldswap_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fieldswap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/fieldswap_model.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/fieldswap_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/ocr/CMakeFiles/fieldswap_ocr.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fieldswap_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/doc/CMakeFiles/fieldswap_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fieldswap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
