file(REMOVE_RECURSE
  "CMakeFiles/table2_field_types.dir/table2_field_types.cc.o"
  "CMakeFiles/table2_field_types.dir/table2_field_types.cc.o.d"
  "table2_field_types"
  "table2_field_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_field_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
