# Empty dependencies file for table2_field_types.
# This may be replaced when dependencies are built.
