file(REMOVE_RECURSE
  "CMakeFiles/fig5_micro_f1.dir/fig5_micro_f1.cc.o"
  "CMakeFiles/fig5_micro_f1.dir/fig5_micro_f1.cc.o.d"
  "fig5_micro_f1"
  "fig5_micro_f1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_micro_f1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
