# Empty dependencies file for fig5_micro_f1.
# This may be replaced when dependencies are built.
