# Empty compiler generated dependencies file for fig6_field_type_effect.
# This may be replaced when dependencies are built.
