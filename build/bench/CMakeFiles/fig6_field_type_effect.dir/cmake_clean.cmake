file(REMOVE_RECURSE
  "CMakeFiles/fig6_field_type_effect.dir/fig6_field_type_effect.cc.o"
  "CMakeFiles/fig6_field_type_effect.dir/fig6_field_type_effect.cc.o.d"
  "fig6_field_type_effect"
  "fig6_field_type_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_field_type_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
