# Empty compiler generated dependencies file for table4_rare_fields.
# This may be replaced when dependencies are built.
