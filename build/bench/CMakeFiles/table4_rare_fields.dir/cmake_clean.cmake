file(REMOVE_RECURSE
  "CMakeFiles/table4_rare_fields.dir/table4_rare_fields.cc.o"
  "CMakeFiles/table4_rare_fields.dir/table4_rare_fields.cc.o.d"
  "table4_rare_fields"
  "table4_rare_fields.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_rare_fields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
