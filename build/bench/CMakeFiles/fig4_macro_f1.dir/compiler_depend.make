# Empty compiler generated dependencies file for fig4_macro_f1.
# This may be replaced when dependencies are built.
