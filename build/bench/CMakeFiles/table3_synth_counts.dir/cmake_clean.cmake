file(REMOVE_RECURSE
  "CMakeFiles/table3_synth_counts.dir/table3_synth_counts.cc.o"
  "CMakeFiles/table3_synth_counts.dir/table3_synth_counts.cc.o.d"
  "table3_synth_counts"
  "table3_synth_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_synth_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
